"""Unit tests for the front-side bus and DRAM subsystems."""

import pytest

from repro.simulator.cache import MemoryTraffic
from repro.simulator.config import BusConfig, DramConfig
from repro.simulator.dram import DramSubsystem
from repro.simulator.membus import FrontSideBus


def traffic(demand=1000.0, prefetch=0.0):
    return MemoryTraffic(demand_load_misses=demand, prefetch_requests=prefetch)


class TestFrontSideBus:
    def test_uncongested_bus_grants_everything(self):
        bus = FrontSideBus(BusConfig())
        tick = bus.tick([traffic(demand=100.0, prefetch=50.0)], 0.0, 0.01)
        assert tick.demand_ratio == 1.0
        assert tick.prefetch_ratio == 1.0
        assert tick.granted_transactions == pytest.approx(150.0)

    def test_latency_grows_with_utilization(self):
        config = BusConfig()
        bus = FrontSideBus(config)
        capacity = config.capacity_tx_per_s * 0.01
        bus.tick([traffic(demand=capacity * 0.8)], 0.0, 0.01)
        loaded = bus.latency_cycles
        assert loaded > config.base_latency_cycles * 2.0

    def test_saturation_drops_prefetch_first(self):
        config = BusConfig()
        bus = FrontSideBus(config)
        capacity = config.capacity_tx_per_s * 0.01
        tick = bus.tick(
            [traffic(demand=capacity * 0.95, prefetch=capacity * 0.5)], 0.0, 0.01
        )
        assert tick.demand_ratio == 1.0
        assert tick.prefetch_ratio < 0.15

    def test_oversubscribed_demand_scaled(self):
        config = BusConfig()
        bus = FrontSideBus(config)
        capacity = config.capacity_tx_per_s * 0.01
        tick = bus.tick([traffic(demand=capacity * 2.0)], 0.0, 0.01)
        assert tick.demand_ratio == pytest.approx(0.5)
        assert tick.prefetch_ratio == 0.0
        assert tick.utilization == pytest.approx(1.0)

    def test_dma_snoops_count_as_demand(self):
        config = BusConfig()
        bus = FrontSideBus(config)
        capacity = config.capacity_tx_per_s * 0.01
        tick = bus.tick([traffic(demand=0.0)], capacity * 0.5, 0.01)
        assert tick.granted_dma_snoops == pytest.approx(capacity * 0.5)
        assert tick.utilization == pytest.approx(0.5)

    def test_latency_bounded(self):
        config = BusConfig()
        bus = FrontSideBus(config)
        capacity = config.capacity_tx_per_s * 0.01
        bus.tick([traffic(demand=capacity * 10.0)], 0.0, 0.01)
        assert bus.latency_cycles <= config.base_latency_cycles * 8.001

    def test_negative_snoops_rejected(self):
        with pytest.raises(ValueError):
            FrontSideBus(BusConfig()).tick([], -1.0, 0.01)


class TestDramSubsystem:
    def test_idle_consumes_background_power(self):
        dram = DramSubsystem(DramConfig())
        tick = dram.tick(0.0, 0.0, 0.5, 0.0, 0.0, 1.0, 0.01)
        assert tick.power_w == pytest.approx(DramConfig().background_power_w)

    def test_writes_cost_more_than_reads(self):
        config = DramConfig()
        reads = DramSubsystem(config).tick(1.0e5, 0.0, 0.5, 0.0, 0.0, 1.0, 0.01)
        writes = DramSubsystem(config).tick(0.0, 1.0e5, 0.5, 0.0, 0.0, 1.0, 0.01)
        assert writes.power_w > reads.power_w

    def test_random_access_costs_more_than_streaming(self):
        config = DramConfig()
        streaming = DramSubsystem(config).tick(1.0e5, 0.0, 1.0, 0.0, 0.0, 1.0, 0.01)
        random = DramSubsystem(config).tick(1.0e5, 0.0, 0.0, 0.0, 0.0, 1.0, 0.01)
        assert random.activations > streaming.activations
        assert random.power_w > streaming.power_w

    def test_more_streams_more_activations(self):
        config = DramConfig()
        few = DramSubsystem(config).tick(1.0e5, 0.0, 0.7, 0.0, 0.0, 1.0, 0.01)
        many = DramSubsystem(config).tick(1.0e5, 0.0, 0.7, 0.0, 0.0, 8.0, 0.01)
        assert many.activations > few.activations

    def test_dma_gets_streaming_locality(self):
        config = DramConfig()
        dram = DramSubsystem(config)
        cpu_random = dram.tick(1.0e5, 0.0, 0.0, 0.0, 0.0, 4.0, 0.01)
        dram2 = DramSubsystem(config)
        dma_only = dram2.tick(0.0, 0.0, 0.0, 1.0e5, 0.0, 4.0, 0.01)
        assert dma_only.activations < cpu_random.activations

    def test_capacity_clamps_traffic(self):
        config = DramConfig()
        dram = DramSubsystem(config)
        capacity = config.capacity_access_per_s * 0.01
        tick = dram.tick(capacity * 3.0, 0.0, 0.9, 0.0, 0.0, 1.0, 0.01)
        assert tick.reads == pytest.approx(capacity)
        assert tick.active_fraction == pytest.approx(1.0)

    def test_energy_accumulates(self):
        dram = DramSubsystem(DramConfig())
        dram.tick(1.0e5, 5.0e4, 0.5, 0.0, 0.0, 2.0, 0.01)
        dram.tick(1.0e5, 5.0e4, 0.5, 0.0, 0.0, 2.0, 0.01)
        assert dram.total_reads == pytest.approx(2.0e5)
        assert dram.total_writes == pytest.approx(1.0e5)
        assert dram.total_energy_j > 0.0

    def test_row_hit_rate_bounds(self):
        dram = DramSubsystem(DramConfig())
        for streamability in (0.0, 0.5, 1.0):
            for streams in (1.0, 4.0, 16.0):
                hit = dram.row_hit_rate(streamability, streams)
                assert 0.0 < hit < 1.0
        with pytest.raises(ValueError):
            dram.row_hit_rate(1.5, 1.0)
