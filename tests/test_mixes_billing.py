"""Tests for heterogeneous mixes and process-level billing."""

import numpy as np
import pytest

from repro.core.accounting import ProcessBillingError, bill_processes
from repro.core.events import Subsystem
from repro.core.validation import average_error
from repro.simulator.config import fast_config
from repro.simulator.system import Server
from repro.workloads.mixes import STANDARD_MIXES, mix
from tests.conftest import TEST_SEED


class TestMix:
    def test_builds_from_components(self):
        spec = mix({"gcc": 2, "mcf": 3})
        assert spec.n_threads == 5
        assert "gcc:2" in spec.name and "mcf:3" in spec.name

    def test_stagger_applied_across_components(self):
        spec = mix({"gcc": 2, "DiskLoad": 2}, stagger_s=10.0)
        starts = [plan.start_time_s for plan in spec.threads]
        assert starts == [0.0, 10.0, 20.0, 30.0]

    def test_blended_knobs(self):
        gcc_yield = mix({"gcc": 4}).smt_yield
        mcf_yield = mix({"mcf": 4}).smt_yield
        blended = mix({"gcc": 2, "mcf": 2}).smt_yield
        assert min(gcc_yield, mcf_yield) <= blended <= max(gcc_yield, mcf_yield)

    def test_custom_name(self):
        assert mix({"gcc": 1}, name="consolidated").name == "consolidated"

    def test_component_thread_limit(self):
        with pytest.raises(ValueError, match="provides"):
            mix({"gcc": 99})

    def test_empty_and_invalid(self):
        with pytest.raises(ValueError):
            mix({})
        with pytest.raises(ValueError):
            mix({"gcc": 0})

    def test_standard_mixes_build_and_run(self, config):
        for components in STANDARD_MIXES:
            spec = mix(components)
            server = Server(config, spec, seed=TEST_SEED)
            breakdown = server.tick()
            assert breakdown.total_w > 100.0

    def test_suite_generalises_to_a_mix(self, paper_suite, config):
        """Trained on homogeneous runs, validated on a heterogeneous
        one — the consolidation scenario the paper does not test."""
        spec = mix({"gcc": 3, "mcf": 3}, stagger_s=10.0)
        server = Server(config, spec, seed=TEST_SEED + 1)
        run = server.run(120.0).drop_warmup(2)
        total_error = average_error(
            paper_suite.predict_total(run.counters), run.power.total()
        )
        assert total_error < 10.0


class TestProcessBilling:
    @pytest.fixture(scope="class")
    def billed_run(self, config, paper_suite):
        spec = mix({"gcc": 2, "mcf": 2}, stagger_s=15.0)
        server = Server(config, spec, seed=TEST_SEED + 2)
        run = server.run(120.0)
        bills = bill_processes(paper_suite, run.counters, server.process_stats)
        return server, run, bills

    def test_bills_every_process(self, billed_run):
        server, _, bills = billed_run
        assert {bill.thread_id for bill in bills} == set(server.process_stats)

    def test_bills_conserve_total_estimate(self, billed_run, paper_suite):
        _, run, bills = billed_run
        billed = sum(bill.total_energy_j for bill in bills)
        estimated = float(
            np.sum(
                paper_suite.predict_total(run.counters) * run.counters.durations
            )
        )
        assert billed == pytest.approx(estimated, rel=1e-6)

    def test_longer_running_processes_pay_more_rent(self, billed_run):
        _, _, bills = billed_run
        by_thread = {bill.thread_id: bill for bill in bills}
        # Thread 0 started first (staggered), so it ran longest.
        assert by_thread[0].runtime_s >= by_thread[3].runtime_s
        assert by_thread[0].cpu_energy_j > by_thread[3].cpu_energy_j

    def test_memory_hog_pays_more_induced_energy(self, config, paper_suite):
        """An mcf tenant induces more memory traffic per runtime second
        than a gcc tenant and is billed accordingly."""
        spec = mix({"gcc": 1, "mcf": 1}, stagger_s=1.0)
        server = Server(config, spec, seed=TEST_SEED + 3)
        run = server.run(90.0)
        bills = {
            bill.thread_id: bill
            for bill in bill_processes(
                paper_suite, run.counters, server.process_stats
            )
        }
        gcc_bill, mcf_bill = bills[0], bills[1]
        gcc_rate = gcc_bill.induced_energy_j / gcc_bill.runtime_s
        mcf_rate = mcf_bill.induced_energy_j / mcf_bill.runtime_s
        assert mcf_rate > gcc_rate

    def test_empty_stats_rejected(self, paper_suite, idle_run):
        with pytest.raises(ProcessBillingError):
            bill_processes(paper_suite, idle_run.counters, {})

    def test_stats_accumulate_during_run(self, config):
        server = Server(config, mix({"gcc": 2}, stagger_s=0.5), seed=TEST_SEED)
        for _ in range(200):
            server.tick()
        assert len(server.process_stats) == 2
        for stats in server.process_stats.values():
            assert stats.runtime_s > 0.0
            assert stats.fetched_uops > 0.0
