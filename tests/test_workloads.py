"""Unit tests for workload abstractions and the paper's profiles."""

import pytest

from repro.workloads.base import (
    Phase,
    PhaseBehavior,
    ThreadPlan,
    WorkloadSpec,
    staggered,
)
from repro.workloads.registry import (
    FP_TABLE_WORKLOADS,
    INTEGER_TABLE_WORKLOADS,
    PAPER_WORKLOADS,
    get_workload,
    list_workloads,
)


class TestPhaseBehavior:
    def test_defaults_are_valid(self):
        PhaseBehavior()

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PhaseBehavior(l3_load_misses_per_kuop=-1.0)

    def test_fraction_above_one_rejected(self):
        with pytest.raises(ValueError):
            PhaseBehavior(blocking_fraction=1.5)

    def test_scaled_multiplies_named_fields(self):
        behavior = PhaseBehavior(uops_per_cycle=1.0, l3_load_misses_per_kuop=2.0)
        scaled = behavior.scaled(uops_per_cycle=2.0)
        assert scaled.uops_per_cycle == 2.0
        assert scaled.l3_load_misses_per_kuop == 2.0  # untouched


class TestThreadPlan:
    def make_plan(self, loop=True):
        return ThreadPlan(
            phases=(
                Phase(2.0, PhaseBehavior(uops_per_cycle=1.0), "a"),
                Phase(3.0, PhaseBehavior(uops_per_cycle=2.0), "b"),
            ),
            loop=loop,
        )

    def test_phase_lookup(self):
        plan = self.make_plan()
        assert plan.phase_at(1.0).name == "a"
        assert plan.phase_at(4.0).name == "b"

    def test_looping_wraps(self):
        plan = self.make_plan()
        assert plan.phase_at(6.0).name == "a"  # 6 % 5 = 1

    def test_non_looping_finishes(self):
        plan = self.make_plan(loop=False)
        assert plan.phase_at(5.5) is None

    def test_cycle_duration(self):
        assert self.make_plan().cycle_duration_s == pytest.approx(5.0)

    def test_empty_phases_rejected(self):
        with pytest.raises(ValueError):
            ThreadPlan(phases=())

    def test_zero_duration_phase_rejected(self):
        with pytest.raises(ValueError):
            Phase(0.0, PhaseBehavior())


class TestStaggered:
    def test_start_times_spaced(self):
        plans = staggered(
            [Phase(10.0, PhaseBehavior())], n_threads=4, stagger_s=30.0
        )
        assert [p.start_time_s for p in plans] == [0.0, 30.0, 60.0, 90.0]

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            staggered([Phase(1.0, PhaseBehavior())], 0)


class TestWorkloadSpec:
    def test_smt_yield_bounds(self):
        threads = staggered([Phase(1.0, PhaseBehavior())], 1)
        with pytest.raises(ValueError):
            WorkloadSpec(name="w", threads=threads, smt_yield=0.4)

    def test_needs_threads(self):
        with pytest.raises(ValueError):
            WorkloadSpec(name="w", threads=())


class TestRegistry:
    def test_twelve_paper_workloads_plus_extensions(self):
        assert len(PAPER_WORKLOADS) == 12
        assert list_workloads()[: len(PAPER_WORKLOADS)] == PAPER_WORKLOADS
        assert "netload" in list_workloads()  # extension workload

    def test_table_partitions(self):
        assert set(INTEGER_TABLE_WORKLOADS) | set(FP_TABLE_WORKLOADS) == set(
            PAPER_WORKLOADS
        )
        assert not set(INTEGER_TABLE_WORKLOADS) & set(FP_TABLE_WORKLOADS)

    def test_every_workload_builds(self):
        for name in list_workloads():
            spec = get_workload(name)
            assert spec.name == name
            assert spec.n_threads >= 1

    def test_unknown_workload_lists_options(self):
        with pytest.raises(KeyError, match="available"):
            get_workload("doom")

    def test_spec_workloads_run_eight_instances(self):
        for name in ("gcc", "mcf", "vortex", "art", "lucas", "mesa"):
            assert get_workload(name).n_threads == 8

    def test_gcc_is_smt_unfriendly(self):
        """gcc saturates at four threads (paper Section 4.2.1)."""
        assert get_workload("gcc").smt_yield == pytest.approx(0.5)

    def test_mcf_has_speculation_power(self):
        """mcf's window-search power drives the 12 % CPU model error."""
        spec = get_workload("mcf")
        behavior = spec.threads[0].phases[0].behavior
        assert behavior.speculation_factor > 0.5
        assert behavior.memory_sensitivity == pytest.approx(1.0)

    def test_diskload_syncs(self):
        spec = get_workload("DiskLoad")
        behaviors = [phase.behavior for phase in spec.threads[0].phases]
        assert any(b.sync_file for b in behaviors)
        assert any(b.disk_write_bps > 1.0e6 for b in behaviors)

    def test_dbt2_is_disk_limited(self):
        spec = get_workload("dbt-2")
        behavior = spec.threads[0].phases[0].behavior
        assert behavior.blocking_fraction > 0.8
        assert behavior.disk_read_bps > 0.0

    def test_idle_has_minimal_activity(self):
        spec = get_workload("idle")
        behavior = spec.threads[0].phases[0].behavior
        assert behavior.blocking_fraction > 0.98

    def test_netload_generates_network_traffic(self):
        spec = get_workload("netload")
        behaviors = [p.behavior for t in spec.threads for p in t.phases]
        assert any(b.net_tx_bps > 1.0e6 for b in behaviors)
        assert all(b.disk_write_bps == 0.0 for b in behaviors)
