"""Unit tests for trace containers (core/traces.py)."""

import numpy as np
import pytest

from repro.core.events import Event, Subsystem
from repro.core.traces import (
    CounterTrace,
    MeasuredRun,
    PowerTrace,
    TraceError,
    concat_runs,
)


def make_counter_trace(n=5, n_cpus=2, rate=100.0):
    timestamps = np.arange(1.0, n + 1.0)
    durations = np.ones(n)
    counts = {
        Event.CYCLES: np.full((n, n_cpus), 1.0e6),
        Event.FETCHED_UOPS: np.full((n, n_cpus), rate),
    }
    return CounterTrace(timestamps=timestamps, durations=durations, counts=counts)


def make_power_trace(n=5, cpu=40.0, memory=28.0):
    return PowerTrace(
        timestamps=np.arange(1.0, n + 1.0),
        watts={
            Subsystem.CPU: np.full(n, cpu),
            Subsystem.MEMORY: np.full(n, memory),
        },
    )


class TestCounterTrace:
    def test_basic_accessors(self):
        trace = make_counter_trace()
        assert trace.n_samples == 5
        assert trace.n_cpus == 2
        assert Event.CYCLES in trace.events

    def test_total_sums_cpus(self):
        trace = make_counter_trace(rate=50.0)
        assert np.allclose(trace.total(Event.FETCHED_UOPS), 100.0)

    def test_rate_divides_by_duration(self):
        trace = make_counter_trace()
        trace.durations[:] = 2.0
        assert np.allclose(trace.rate(Event.FETCHED_UOPS), 100.0)

    def test_missing_event_raises(self):
        trace = make_counter_trace()
        with pytest.raises(TraceError, match="does not record"):
            trace.total(Event.DISK_BYTES)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(TraceError):
            CounterTrace(
                timestamps=np.arange(3.0),
                durations=np.ones(3),
                counts={Event.CYCLES: np.ones((2, 2))},
            )

    def test_negative_duration_rejected(self):
        with pytest.raises(TraceError, match="positive"):
            CounterTrace(
                timestamps=np.arange(2.0),
                durations=np.array([1.0, -1.0]),
                counts={Event.CYCLES: np.ones((2, 1))},
            )

    def test_slice_preserves_alignment(self):
        trace = make_counter_trace(n=6)
        sliced = trace.slice(2, 5)
        assert sliced.n_samples == 3
        assert sliced.timestamps[0] == trace.timestamps[2]


class TestPowerTrace:
    def test_total_sums_subsystems(self):
        trace = make_power_trace(cpu=40.0, memory=28.0)
        assert np.allclose(trace.total(), 68.0)

    def test_mean_and_std(self):
        trace = make_power_trace()
        assert trace.mean(Subsystem.CPU) == pytest.approx(40.0)
        assert trace.std(Subsystem.CPU) == pytest.approx(0.0)

    def test_missing_subsystem_raises(self):
        trace = make_power_trace()
        with pytest.raises(TraceError, match="does not measure"):
            trace.power(Subsystem.DISK)

    def test_wrong_length_rejected(self):
        with pytest.raises(TraceError):
            PowerTrace(
                timestamps=np.arange(3.0),
                watts={Subsystem.CPU: np.ones(2)},
            )


class TestMeasuredRun:
    def make_run(self, n=6, workload="w"):
        return MeasuredRun(
            workload=workload,
            counters=make_counter_trace(n=n),
            power=make_power_trace(n=n),
        )

    def test_mismatched_sample_counts_rejected(self):
        with pytest.raises(TraceError, match="synchronisation"):
            MeasuredRun(
                workload="w",
                counters=make_counter_trace(n=5),
                power=make_power_trace(n=4),
            )

    def test_drop_warmup(self):
        run = self.make_run(n=6)
        trimmed = run.drop_warmup(2)
        assert trimmed.n_samples == 4
        assert trimmed.workload == run.workload

    def test_drop_warmup_too_much_raises(self):
        with pytest.raises(TraceError):
            self.make_run(n=3).drop_warmup(3)

    def test_round_trip_via_dict(self):
        run = self.make_run()
        clone = MeasuredRun.from_dict(run.to_dict())
        assert clone.workload == run.workload
        assert np.allclose(
            clone.counters.total(Event.CYCLES), run.counters.total(Event.CYCLES)
        )
        assert np.allclose(
            clone.power.power(Subsystem.CPU), run.power.power(Subsystem.CPU)
        )

    def test_save_load(self, tmp_path):
        run = self.make_run()
        path = str(tmp_path / "run.json")
        run.save(path)
        clone = MeasuredRun.load(path)
        assert clone.n_samples == run.n_samples

    def test_duration(self):
        assert self.make_run(n=6).duration_s == pytest.approx(6.0)


class TestConcatRuns:
    def test_concatenates_samples(self):
        runs = [
            MeasuredRun("a", make_counter_trace(4), make_power_trace(4)),
            MeasuredRun("b", make_counter_trace(3), make_power_trace(3)),
        ]
        merged = concat_runs(runs)
        assert merged.n_samples == 7
        assert merged.workload == "a+b"
        # Timestamps keep increasing across the join.
        assert np.all(np.diff(merged.counters.timestamps) > 0)

    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            concat_runs([])

    def test_mismatched_events_rejected(self):
        a = MeasuredRun("a", make_counter_trace(3), make_power_trace(3))
        counters = make_counter_trace(3)
        del counters.counts[Event.FETCHED_UOPS]
        b = MeasuredRun("b", counters, make_power_trace(3))
        with pytest.raises(TraceError, match="different events"):
            concat_runs([a, b])
