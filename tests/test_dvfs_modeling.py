"""Tests for DVFS-aware modeling (core/dvfs.py) and the new features."""

import numpy as np
import pytest

from repro.core.dvfs import (
    DvfsModelingError,
    DvfsSuiteBank,
    train_frequency_aware_cpu_model,
)
from repro.core.events import Subsystem
from repro.core.features import get_feature
from repro.core.validation import average_error
from repro.simulator.config import fast_config
from repro.simulator.system import simulate_workload
from repro.workloads.registry import get_workload
from tests.conftest import TEST_SEED


@pytest.fixture(scope="module")
def dvfs_runs():
    """gcc + idle at nominal and at p-state 2."""
    config = fast_config()

    def make(name, pstate):
        return simulate_workload(
            get_workload(name),
            duration_s=150.0,
            seed=TEST_SEED,
            config=config,
            pstate=pstate,
        ).drop_warmup(2)

    return {
        pstate: {name: make(name, pstate) for name in ("idle", "gcc")}
        for pstate in (0, 2)
    }


class TestDvfsFeatures:
    def test_clock_ghz_reads_the_operating_point(self, dvfs_runs):
        feature = get_feature("clock_ghz")
        nominal = feature(dvfs_runs[0]["idle"].counters).mean()
        low = feature(dvfs_runs[2]["idle"].counters).mean()
        # 4 packages at 1.5 vs 0.9 GHz.
        assert nominal == pytest.approx(6.0, rel=0.01)
        assert low == pytest.approx(3.6, rel=0.01)

    def test_active_clock_ghz_scales_with_state(self, dvfs_runs):
        feature = get_feature("active_clock_ghz")
        nominal = feature(dvfs_runs[0]["gcc"].counters)[-10:].mean()
        low = feature(dvfs_runs[2]["gcc"].counters)[-10:].mean()
        assert low < nominal
        assert low == pytest.approx(nominal * 0.6, rel=0.1)

    def test_guops_per_second_scales_with_state(self, dvfs_runs):
        feature = get_feature("guops_per_second")
        nominal = feature(dvfs_runs[0]["gcc"].counters)[-10:].mean()
        low = feature(dvfs_runs[2]["gcc"].counters)[-10:].mean()
        assert low < nominal * 0.8

    def test_dvfs_features_are_trickle_down(self):
        for name in ("clock_ghz", "active_clock_ghz", "guops_per_second"):
            assert get_feature(name).is_trickle_down


class TestDvfsSuiteBank:
    def test_nominal_suite_fails_off_point(self, dvfs_runs, paper_suite):
        run = dvfs_runs[2]["gcc"]
        error = average_error(
            paper_suite.predict(Subsystem.CPU, run.counters),
            run.power.power(Subsystem.CPU),
        )
        assert error > 20.0  # the motivating failure

    def test_bank_dispatches_by_pstate(self, dvfs_runs, training_runs):
        bank = DvfsSuiteBank.train(
            {
                0: {**training_runs},
                2: {**training_runs, **dvfs_runs[2]},
            }
        )
        assert bank.pstates == (0, 2)
        run = dvfs_runs[2]["gcc"]
        # Note: the p-state-2 suite above is trained mostly on nominal
        # runs, so only check dispatch mechanics here; accuracy is
        # covered by the bench with proper per-state training sets.
        assert len(bank.predict_total(2, run.counters)) == run.n_samples

    def test_unknown_pstate_rejected(self, paper_suite):
        bank = DvfsSuiteBank({0: paper_suite})
        with pytest.raises(DvfsModelingError, match="no suite"):
            bank.suite_for(3)

    def test_empty_bank_rejected(self):
        with pytest.raises(DvfsModelingError):
            DvfsSuiteBank({})


class TestFrequencyAwareModel:
    def test_requires_multiple_pstates(self, dvfs_runs):
        with pytest.raises(DvfsModelingError, match="unidentifiable"):
            train_frequency_aware_cpu_model(
                [dvfs_runs[0]["gcc"], dvfs_runs[0]["idle"]]
            )
        with pytest.raises(DvfsModelingError, match="two operating"):
            train_frequency_aware_cpu_model([dvfs_runs[0]["gcc"]])

    def test_bounded_error_across_states(self, dvfs_runs):
        model = train_frequency_aware_cpu_model(
            [
                dvfs_runs[0]["gcc"],
                dvfs_runs[2]["gcc"],
                dvfs_runs[0]["idle"],
                dvfs_runs[2]["idle"],
            ]
        )
        for pstate in (0, 2):
            run = dvfs_runs[pstate]["gcc"]
            error = average_error(
                model.predict(run.counters), run.power.power(Subsystem.CPU)
            )
            # Bounded — but nowhere near per-state accuracy (the model
            # family cannot express V^2*f x activity).
            assert error < 35.0

    def test_pstate_recorded_in_metadata(self, dvfs_runs):
        assert dvfs_runs[2]["gcc"].metadata["pstate"] == 2
        assert dvfs_runs[0]["gcc"].metadata["pstate"] == 0
