"""Tests for the local-event baseline models (Janzen, Zedlewski, Heath)."""

import numpy as np
import pytest

from repro.baselines.heath import (
    HeathOsModel,
    ONCHIP_COUNTER_READ_CYCLES,
    OS_COUNTER_READ_CYCLES,
)
from repro.baselines.janzen import JanzenMemoryModel
from repro.baselines.zedlewski import ZedlewskiDiskModel
from repro.core.events import Subsystem
from repro.core.validation import average_error


class TestJanzenMemoryModel:
    def test_fit_and_predict_on_training_run(self, mcf_run):
        model = JanzenMemoryModel.fit(mcf_run)
        error = average_error(
            model.predict(mcf_run.counters),
            mcf_run.power.power(Subsystem.MEMORY),
        )
        # Local DRAM events are near-perfect predictors by construction.
        assert error < 1.5

    def test_transfers_across_workloads(self, mcf_run, mesa_run):
        model = JanzenMemoryModel.fit(mcf_run)
        error = average_error(
            model.predict(mesa_run.counters),
            mesa_run.power.power(Subsystem.MEMORY),
        )
        assert error < 5.0

    def test_describe_mentions_local_events(self, mcf_run):
        assert "local" in JanzenMemoryModel.fit(mcf_run).describe()

    def test_coefficient_shape_enforced(self):
        with pytest.raises(ValueError):
            JanzenMemoryModel(np.ones(3))


class TestZedlewskiDiskModel:
    def test_fit_on_diskload(self, diskload_run):
        model = ZedlewskiDiskModel.fit(diskload_run)
        error = average_error(
            model.predict(diskload_run.counters),
            diskload_run.power.power(Subsystem.DISK),
        )
        assert error < 1.0

    def test_rotation_constant_recovered(self, diskload_run, config):
        model = ZedlewskiDiskModel.fit(diskload_run)
        rotation = config.disk.rotation_power_w * config.disk.num_disks
        assert model.coefficients[0] == pytest.approx(rotation, rel=0.05)

    def test_transfers_to_idle(self, diskload_run, idle_run):
        model = ZedlewskiDiskModel.fit(diskload_run)
        error = average_error(
            model.predict(idle_run.counters),
            idle_run.power.power(Subsystem.DISK),
        )
        assert error < 2.0


class TestHeathOsModel:
    def test_fit_and_predict(self, gcc_run, diskload_run):
        model = HeathOsModel.fit(gcc_run, diskload_run)
        cpu_error = average_error(
            model.predict_cpu(gcc_run.counters),
            gcc_run.power.power(Subsystem.CPU),
        )
        disk_error = average_error(
            model.predict_disk(diskload_run.counters),
            diskload_run.power.power(Subsystem.DISK),
        )
        assert cpu_error < 10.0
        assert disk_error < 2.0

    def test_utilization_only_cpu_model_is_weaker_than_suite(
        self, paper_suite, gcc_run
    ):
        """Utilisation alone misses the uop-level variation the
        trickle-down model captures (the paper's overhead-vs-fidelity
        argument for on-chip counters)."""
        heath = HeathOsModel.fit(gcc_run, gcc_run)
        heath_error = average_error(
            heath.predict_cpu(gcc_run.counters),
            gcc_run.power.power(Subsystem.CPU),
        )
        suite_error = average_error(
            paper_suite.predict(Subsystem.CPU, gcc_run.counters),
            gcc_run.power.power(Subsystem.CPU),
        )
        assert suite_error <= heath_error + 0.5

    def test_sampling_overhead_favours_onchip_counters(self):
        os_cost = HeathOsModel.sampling_overhead_cycles(6, os_based=True)
        onchip_cost = HeathOsModel.sampling_overhead_cycles(6, os_based=False)
        assert os_cost > onchip_cost * 100.0

    def test_negative_counter_count_rejected(self):
        with pytest.raises(ValueError):
            HeathOsModel.sampling_overhead_cycles(-1, os_based=True)
