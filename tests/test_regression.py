"""Unit tests for least-squares fitting (core/regression.py)."""

import numpy as np
import pytest

from repro.core.regression import (
    RegressionError,
    fit_least_squares,
    polynomial_design,
)


class TestPolynomialDesign:
    def test_degree_one_adds_intercept(self):
        raw = np.array([[1.0], [2.0]])
        design = polynomial_design(raw, 1)
        assert design.shape == (2, 2)
        assert np.allclose(design[:, 0], 1.0)
        assert np.allclose(design[:, 1], [1.0, 2.0])

    def test_degree_two_squares_each_feature(self):
        raw = np.array([[2.0, 3.0]])
        design = polynomial_design(raw, 2)
        assert np.allclose(design, [[1.0, 2.0, 3.0, 4.0, 9.0]])

    def test_no_cross_terms(self):
        raw = np.array([[2.0, 3.0]])
        design = polynomial_design(raw, 2)
        assert 6.0 not in design  # 2*3 cross term absent

    def test_degree_zero_is_intercept_only(self):
        design = polynomial_design(np.ones((4, 3)), 0)
        assert design.shape == (4, 1)

    def test_rejects_bad_input(self):
        with pytest.raises(RegressionError):
            polynomial_design(np.ones(3), 1)
        with pytest.raises(RegressionError):
            polynomial_design(np.ones((3, 1)), -1)


class TestFitLeastSquares:
    def test_recovers_exact_linear_relation(self):
        x = np.linspace(0.0, 10.0, 50)
        design = polynomial_design(x[:, None], 1)
        target = 3.0 + 2.0 * x
        coeffs, diag = fit_least_squares(design, target)
        assert coeffs == pytest.approx([3.0, 2.0])
        assert diag.r_squared == pytest.approx(1.0)
        assert diag.avg_abs_error_pct < 1.0e-8

    def test_recovers_quadratic(self, rng):
        x = rng.uniform(0.0, 5.0, 200)
        design = polynomial_design(x[:, None], 2)
        target = 1.0 + 0.5 * x + 0.25 * x**2
        coeffs, _ = fit_least_squares(design, target)
        assert coeffs == pytest.approx([1.0, 0.5, 0.25], abs=1.0e-8)

    def test_noise_degrades_r_squared(self, rng):
        x = np.linspace(0.0, 10.0, 300)
        design = polynomial_design(x[:, None], 1)
        target = 5.0 + x + rng.normal(0.0, 2.0, x.size)
        _, diag = fit_least_squares(design, target)
        assert 0.0 < diag.r_squared < 1.0
        assert diag.rmse_w > 0.5

    def test_underdetermined_rejected(self):
        design = np.ones((2, 3))
        with pytest.raises(RegressionError, match="at least"):
            fit_least_squares(design, np.ones(2))

    def test_nonfinite_rejected(self):
        design = np.array([[1.0, np.nan], [1.0, 2.0], [1.0, 3.0]])
        with pytest.raises(RegressionError, match="non-finite"):
            fit_least_squares(design, np.ones(3))

    def test_length_mismatch_rejected(self):
        with pytest.raises(RegressionError):
            fit_least_squares(np.ones((3, 1)), np.ones(4))

    def test_constant_target_r_squared_is_one(self):
        design = polynomial_design(np.arange(5.0)[:, None], 1)
        coeffs, diag = fit_least_squares(design, np.full(5, 7.0))
        assert coeffs[0] == pytest.approx(7.0)
        assert diag.r_squared == pytest.approx(1.0)

    def test_condition_number_reported(self):
        x = np.linspace(1.0, 2.0, 20)
        design = polynomial_design(np.column_stack([x, x * 1.0000001]), 1)
        _, diag = fit_least_squares(design, x)
        assert diag.condition_number > 1.0e5  # nearly collinear features
