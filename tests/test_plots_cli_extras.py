"""Tests for ASCII charts, residual diagnostics and the new CLI verbs."""

import numpy as np
import pytest

from repro.analysis.plots import ascii_chart, residual_summary
from repro.cli import main as cli_main


class TestAsciiChart:
    def test_renders_grid_with_axis(self):
        chart = ascii_chart(
            {"a": np.linspace(0.0, 10.0, 100)}, width=40, height=8
        )
        lines = chart.splitlines()
        assert len(lines) == 10  # 8 rows + axis + legend
        assert "*=a" in lines[-1]
        assert "|" in lines[0]

    def test_two_series_get_distinct_glyphs(self):
        chart = ascii_chart(
            {
                "measured": np.linspace(0.0, 1.0, 50),
                "modeled": np.linspace(1.0, 0.0, 50),
            },
            width=30,
            height=6,
        )
        assert "*=measured" in chart
        assert "o=modeled" in chart
        assert "*" in chart and "o" in chart

    def test_long_series_downsampled(self):
        chart = ascii_chart({"x": np.sin(np.linspace(0, 20, 5000))}, width=50)
        for line in chart.splitlines()[:-2]:
            assert len(line) <= 50 + 11

    def test_constant_series_does_not_crash(self):
        ascii_chart({"flat": np.full(20, 42.0)})

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"x": np.ones(5)}, width=4)
        with pytest.raises(ValueError):
            ascii_chart({"x": np.array([])})

    def test_y_axis_bounds_bracket_data(self):
        chart = ascii_chart({"x": np.array([10.0, 20.0, 30.0])}, height=6)
        lines = chart.splitlines()
        top = float(lines[0].split("|")[0])
        bottom = float(lines[5].split("|")[0])
        assert top >= 30.0
        assert bottom <= 10.0


class TestResidualSummary:
    def test_perfect_model(self):
        series = np.linspace(10.0, 20.0, 50)
        stats = residual_summary(series, series)
        assert stats["bias_w"] == 0.0
        assert stats["rmse_w"] == 0.0
        assert stats["correlation"] == pytest.approx(1.0)

    def test_constant_offset(self):
        measured = np.linspace(10.0, 20.0, 50)
        stats = residual_summary(measured, measured + 2.0)
        assert stats["bias_w"] == pytest.approx(2.0)
        assert stats["rmse_w"] == pytest.approx(2.0)
        assert stats["p95_abs_error_w"] == pytest.approx(2.0)

    def test_bias_sign_convention(self):
        """Positive bias means the model overestimates."""
        measured = np.full(10, 100.0)
        measured[0] += 1e-9  # avoid zero variance
        stats = residual_summary(measured, np.full(10, 90.0))
        assert stats["bias_w"] < 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            residual_summary(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            residual_summary(np.ones(1), np.ones(1))


class TestCliExtras:
    COMMON = ["--duration", "60", "--tick-ms", "10"]

    def test_export_command(self, tmp_path, capsys):
        out = str(tmp_path / "trace.csv")
        code = cli_main(["export", "idle", "-o", out] + self.COMMON)
        assert code == 0
        assert "wrote" in capsys.readouterr().out
        with open(out, encoding="utf-8") as handle:
            assert handle.readline().startswith("# workload=idle")

    def test_export_requires_output(self):
        with pytest.raises(SystemExit):
            cli_main(["export", "idle"] + self.COMMON)

    def test_billing_command(self, capsys):
        code = cli_main(["billing"] + self.COMMON)
        assert code == 0
        out = capsys.readouterr().out
        assert "Per-process energy bill" in out
        assert "thread 0" in out

    def test_figure_command_renders_chart(self, capsys):
        code = cli_main(["fig6"] + self.COMMON)
        assert code == 0
        out = capsys.readouterr().out
        assert "residuals:" in out
        assert "*=measured" in out
