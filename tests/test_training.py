"""Unit tests for the training recipe machinery (core/training.py)."""

import pytest

from repro.core.events import Subsystem
from repro.core.models import ConstantModel, PolynomialModel
from repro.core.training import (
    L3_MEMORY_RECIPE,
    ModelSpec,
    ModelTrainer,
    PAPER_RECIPE,
    TrainingError,
    TrainingRecipe,
)


class TestRecipeDefinitions:
    def test_paper_recipe_covers_five_subsystems(self):
        assert {spec.subsystem for spec in PAPER_RECIPE.specs} == set(Subsystem)

    def test_paper_recipe_training_workloads(self):
        assert set(PAPER_RECIPE.training_workloads) == {
            "gcc",
            "mcf",
            "DiskLoad",
            "idle",
        }

    def test_memory_model_uses_bus_transactions(self):
        spec = PAPER_RECIPE.spec_for(Subsystem.MEMORY)
        assert spec.feature_names == ("bus_transactions_per_mcycle",)
        assert spec.form == "quadratic"
        assert spec.train_workload == "mcf"

    def test_disk_model_uses_interrupts_and_dma(self):
        spec = PAPER_RECIPE.spec_for(Subsystem.DISK)
        assert "disk_interrupts_per_mcycle" in spec.feature_names
        assert "dma_accesses_per_mcycle" in spec.feature_names

    def test_chipset_is_constant(self):
        assert PAPER_RECIPE.spec_for(Subsystem.CHIPSET).form == "constant"

    def test_l3_recipe_trains_on_mesa(self):
        spec = L3_MEMORY_RECIPE.spec_for(Subsystem.MEMORY)
        assert spec.train_workload == "mesa"
        assert spec.feature_names == ("l3_misses_per_mcycle",)

    def test_duplicate_subsystems_rejected(self):
        spec = ModelSpec(Subsystem.CPU, "constant", (), "idle")
        with pytest.raises(ValueError, match="duplicate"):
            TrainingRecipe(name="bad", specs=(spec, spec))

    def test_unknown_form_rejected(self):
        with pytest.raises(ValueError, match="form"):
            ModelSpec(Subsystem.CPU, "cubic", ("active_fraction",), "idle")

    def test_nonconstant_needs_features(self):
        with pytest.raises(ValueError, match="features"):
            ModelSpec(Subsystem.CPU, "linear", (), "idle")

    def test_spec_for_missing_subsystem(self):
        with pytest.raises(KeyError):
            L3_MEMORY_RECIPE.spec_for(Subsystem.DISK)


class TestModelTrainer:
    def test_missing_training_run_is_a_clear_error(self, idle_run):
        trainer = ModelTrainer(PAPER_RECIPE)
        with pytest.raises(TrainingError, match="needs a training run of"):
            trainer.train({"idle": idle_run})

    def test_trains_all_five_models(self, paper_suite):
        assert set(paper_suite.models) == set(Subsystem)
        assert isinstance(paper_suite.model(Subsystem.CHIPSET), ConstantModel)
        assert isinstance(paper_suite.model(Subsystem.CPU), PolynomialModel)

    def test_cpu_model_form_matches_equation_1(self, paper_suite):
        cpu = paper_suite.model(Subsystem.CPU)
        assert cpu.degree == 1
        assert cpu.features.names == (
            "active_fraction",
            "fetched_uops_per_cycle",
        )

    def test_chipset_constant_near_nominal(self, paper_suite):
        chipset = paper_suite.model(Subsystem.CHIPSET)
        # Trained on idle, the constant should sit near 19.9 W.
        assert 19.0 < chipset.value < 20.8

    def test_local_event_features_rejected(self, idle_run):
        recipe = TrainingRecipe(
            name="cheating",
            specs=(
                ModelSpec(
                    Subsystem.MEMORY, "linear", ("dram_reads_per_s",), "idle"
                ),
            ),
        )
        trainer = ModelTrainer(recipe)
        # The cheating feature does not even exist in the paper
        # vocabulary, so the purity gate or the lookup must fail.
        with pytest.raises((KeyError, TrainingError)):
            trainer.train({"idle": idle_run})
