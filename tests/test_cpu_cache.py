"""Unit tests for the CPU package, cache hierarchy and TLB policy."""

import pytest

from repro.osim.process import ThreadActivity
from repro.osim.scheduler import PackageLoad
from repro.simulator.cache import CacheHierarchy, MemoryTraffic, merge_traffic
from repro.simulator.config import CacheConfig, CpuConfig
from repro.simulator.cpu import CpuPackage
from repro.simulator.tlb import TlbPolicy
from repro.workloads.base import PhaseBehavior


def make_package():
    return CpuPackage(0, CpuConfig(), CacheConfig())


def activity(behavior=None, occupancy=1.0, modulation=1.0, thread_id=0):
    return ThreadActivity(
        thread_id=thread_id,
        behavior=behavior or PhaseBehavior(uops_per_cycle=1.5),
        modulation=modulation,
        occupancy=occupancy,
        sync_requested=False,
        phase_name="test",
    )


def run_tick(package, activities, latency=320.0, interrupts=0.0, dt=0.01):
    load = PackageLoad(package_id=0, activities=activities)
    return package.tick(load, 0.7, latency, 320.0, interrupts, dt)


class TestCpuPackage:
    def test_idle_package_is_halted(self):
        package = make_package()
        tick = run_tick(package, [])
        assert tick.halted_cycles == pytest.approx(tick.cycles)
        assert package.power(tick) == pytest.approx(
            CpuConfig().halted_power_w, rel=0.01
        )

    def test_interrupts_wake_an_idle_package(self):
        package = make_package()
        tick = run_tick(package, [], interrupts=10.0)
        assert tick.halted_cycles < tick.cycles
        assert package.power(tick) > CpuConfig().halted_power_w

    def test_active_package_consumes_active_power(self):
        package = make_package()
        tick = run_tick(package, [activity()])
        assert tick.halted_cycles == pytest.approx(0.0)
        power = package.power(tick)
        assert power > CpuConfig().active_idle_power_w * 0.8
        assert power < 50.0  # a single P4 package

    def test_more_uops_more_power(self):
        package = make_package()
        slow = run_tick(package, [activity(PhaseBehavior(uops_per_cycle=0.5))])
        fast = run_tick(package, [activity(PhaseBehavior(uops_per_cycle=2.5))])
        assert fast.fetched_uops > slow.fetched_uops
        assert package.power(fast) > package.power(slow)

    def test_memory_latency_throttles_throughput(self):
        package = make_package()
        behavior = PhaseBehavior(
            uops_per_cycle=1.5, l3_load_misses_per_kuop=8.0, memory_sensitivity=1.0
        )
        unloaded = run_tick(package, [activity(behavior)], latency=320.0)
        congested = run_tick(package, [activity(behavior)], latency=1500.0)
        assert congested.executed_uops < unloaded.executed_uops * 0.6

    def test_speculation_consumes_power_but_not_fetch(self):
        package = make_package()
        quiet = PhaseBehavior(uops_per_cycle=1.0, speculation_factor=0.0)
        searching = PhaseBehavior(uops_per_cycle=1.0, speculation_factor=1.0)
        a = run_tick(package, [activity(quiet)])
        b = run_tick(package, [activity(searching)])
        assert b.fetched_uops == pytest.approx(a.fetched_uops, rel=1e-6)
        assert package.power(b) > package.power(a) + 2.0

    def test_smt_yield_limits_two_thread_throughput(self):
        package = make_package()
        behavior = PhaseBehavior(uops_per_cycle=1.6)
        one = run_tick(package, [activity(behavior)])
        load = PackageLoad(0, [activity(behavior), activity(behavior)])
        two = package.tick(load, 0.5, 320.0, 320.0, 0.0, 0.01)
        # smt_yield=0.5: the second thread adds nothing.
        assert two.executed_uops == pytest.approx(one.executed_uops, rel=0.05)

    def test_fetched_exceeds_executed_by_wrongpath(self):
        package = make_package()
        behavior = PhaseBehavior(uops_per_cycle=1.0, wrongpath_fraction=0.2)
        tick = run_tick(package, [activity(behavior)])
        assert tick.fetched_uops == pytest.approx(tick.executed_uops * 1.2)

    def test_occupancy_scales_halted_cycles(self):
        package = make_package()
        tick = run_tick(package, [activity(occupancy=0.25)])
        assert tick.halted_cycles == pytest.approx(tick.cycles * 0.75, rel=0.01)


class TestCacheHierarchy:
    def test_traffic_proportional_to_uops(self):
        cache = CacheHierarchy(CacheConfig())
        behavior = PhaseBehavior(l3_load_misses_per_kuop=2.0)
        small = cache.traffic_for(behavior, 1.0e6, 1.0, 1.0, 1.0, 0.01)
        large = cache.traffic_for(behavior, 2.0e6, 1.0, 1.0, 1.0, 0.01)
        assert large.demand_load_misses == pytest.approx(
            2.0 * small.demand_load_misses
        )

    def test_prefetch_ramps_with_congestion(self):
        cache = CacheHierarchy(CacheConfig())
        behavior = PhaseBehavior(l3_load_misses_per_kuop=2.0, streamability=0.8)
        calm = cache.traffic_for(behavior, 1.0e6, 1.0, 1.0, 1.0, 0.01)
        stressed = cache.traffic_for(behavior, 1.0e6, 1.0, 1.0, 2.5, 0.01)
        assert stressed.prefetch_requests > calm.prefetch_requests * 2.0

    def test_prefetch_ramp_caps(self):
        cache = CacheHierarchy(CacheConfig())
        assert cache.prefetch_ramp(100.0) == pytest.approx(
            cache._PREFETCH_RAMP_MAX
        )
        with pytest.raises(ValueError):
            cache.prefetch_ramp(0.5)

    def test_writebacks_follow_ratio(self):
        cache = CacheHierarchy(CacheConfig())
        behavior = PhaseBehavior(l3_load_misses_per_kuop=4.0, writeback_ratio=0.5)
        traffic = cache.traffic_for(behavior, 1.0e6, 1.0, 1.0, 1.0, 0.01)
        assert traffic.writebacks == pytest.approx(
            traffic.demand_load_misses * 0.5
        )

    def test_scaled_applies_ratios(self):
        traffic = MemoryTraffic(
            demand_load_misses=100.0,
            writebacks=50.0,
            prefetch_requests=40.0,
            pagewalk_reads=10.0,
            uncacheable_accesses=5.0,
        )
        scaled = traffic.scaled(0.5, 0.0)
        assert scaled.demand_load_misses == 50.0
        assert scaled.writebacks == 25.0
        assert scaled.prefetch_requests == 0.0

    def test_merge_traffic_blends_streamability_by_volume(self):
        streaming = MemoryTraffic(demand_load_misses=90.0, streamability=1.0)
        random = MemoryTraffic(demand_load_misses=10.0, streamability=0.0)
        merged = merge_traffic([streaming, random])
        assert merged.demand_load_misses == 100.0
        assert merged.streamability == pytest.approx(0.9)

    def test_merge_empty_defaults(self):
        merged = merge_traffic([])
        assert merged.demand_transactions == 0.0
        assert merged.streamability == 0.5


class TestTlbPolicy:
    def test_faults_scale_with_misses(self):
        policy = TlbPolicy()
        assert policy.disk_read_bytes(0.0) == 0.0
        assert policy.disk_read_bytes(2.0e6) == pytest.approx(
            2.0e6 * policy.major_fault_ratio * policy.fault_bytes
        )

    def test_negative_misses_rejected(self):
        with pytest.raises(ValueError):
            TlbPolicy().disk_read_bytes(-1.0)
