"""Tests for the EXPERIMENTS.md report builder (analysis/report.py)."""

import pytest

from repro.analysis.experiments import ExperimentContext
from repro.analysis.report import build_report
from repro.simulator.config import fast_config


@pytest.fixture(scope="module")
def report_text(tmp_path_factory):
    """One full (short) report build; shared across assertions."""
    context = ExperimentContext(
        config=fast_config(),
        seed=19,
        duration_s=80.0,
        cache_dir=str(tmp_path_factory.mktemp("report-runs")),
    )
    return build_report(context)


class TestBuildReport:
    def test_contains_all_tables(self, report_text):
        for title in (
            "Table 1: Subsystem Average Power",
            "Table 2: Subsystem Power Standard Deviation",
            "Table 3: Integer Average Model Error",
            "Table 4: Floating-Point Average Model Error",
        ):
            assert title in report_text

    def test_contains_all_figures(self, report_text):
        for figure in ("Figure 2", "Figure 3", "Figure 4", "Figure 5",
                       "Figure 6", "Figure 7"):
            assert figure in report_text

    def test_contains_fitted_equations(self, report_text):
        assert "Equations 1-5 analogues" in report_text
        assert "bus_transactions_per_mcycle" in report_text
        assert "l3_misses_per_mcycle" in report_text  # the ablation model

    def test_paper_values_shown_alongside(self, report_text):
        # Table 1 idle row carries the paper's 38.40 W reference.
        assert "*(38.40)*" in report_text

    def test_every_workload_row_present(self, report_text):
        from repro.workloads.registry import PAPER_WORKLOADS

        for name in PAPER_WORKLOADS:
            assert f"| {name} |" in report_text

    def test_deviations_documented(self, report_text):
        assert "Known deviations" in report_text
        assert "Heavy-FP memory error sign" in report_text

    def test_extensions_summarised(self, report_text):
        assert "Extensions (beyond the paper's evaluation)" in report_text
        assert "Per-vector interrupt attribution" in report_text

    def test_dc_adjusted_section(self, report_text):
        assert "DC-offset-adjusted errors" in report_text

    def test_is_valid_markdown_tables(self, report_text):
        """Every pipe-table row has a consistent column count."""
        lines = report_text.splitlines()
        i = 0
        tables_checked = 0
        while i < len(lines):
            if lines[i].startswith("| workload"):
                width = lines[i].count("|")
                j = i + 1
                while j < len(lines) and lines[j].startswith("|"):
                    assert lines[j].count("|") == width, lines[j]
                    j += 1
                tables_checked += 1
                i = j
            else:
                i += 1
        assert tables_checked >= 4
