"""Datacenter-scale energy-proportional power management tests."""

import numpy as np
import pytest

from repro import obs
from repro.cluster import NAP_POWER_W, STANDBY_POWER_W, _NodeControl
from repro.dc import (
    BudgetAllocator,
    Datacenter,
    FlashCrowd,
    NodePowerTable,
    PolicyConfig,
    SubsystemManager,
    TrafficModel,
    ZoneOutage,
    ZoneSpec,
    energy_proportionality,
    policy_regret,
    run_scenario,
    scenario_objective,
    train_zone_bank,
)
from repro.simulator.config import fast_config


@pytest.fixture(scope="module")
def calibration(config):
    return train_zone_bank(config, duration_s=8.0, seed=901)


# -- traffic -----------------------------------------------------------


def _zones():
    return (
        ZoneSpec("a", 4, 1.0e6),
        ZoneSpec("b", 4, 5.0e5, phase_s=60.0),
    )


class TestTraffic:
    def test_deterministic(self):
        kwargs = dict(zones=_zones(), period_s=120.0, seed=5)
        one = TrafficModel(**kwargs).demand(90)
        two = TrafficModel(**kwargs).demand(90)
        for zone in one:
            assert np.array_equal(one[zone], two[zone])

    def test_diurnal_trough_and_peak(self):
        model = TrafficModel(
            zones=(ZoneSpec("a", 4, 1.0e6),),
            period_s=100.0,
            trough_fraction=0.4,
            noise=0.0,
        )
        demand = model.demand(100)["a"]
        # Wave starts at the trough and peaks half a period in.
        assert demand[0] == round(0.4 * 1.0e6 / 25_000.0)
        assert demand[50] == round(1.0e6 / 25_000.0)

    def test_flash_crowd_multiplies_only_its_zone_and_window(self):
        base = TrafficModel(zones=_zones(), period_s=1.0e9, noise=0.0)
        crowd = TrafficModel(
            zones=_zones(),
            period_s=1.0e9,
            noise=0.0,
            flash_crowds=(
                FlashCrowd(30.0, 20.0, magnitude=2.0, zone="a", ramp_s=5.0),
            ),
        )
        quiet = base.demand(80)
        spiky = crowd.demand(80)
        assert np.array_equal(quiet["b"], spiky["b"])
        assert np.array_equal(quiet["a"][:30], spiky["a"][:30])
        # Plateau (after the 5 s ramp) doubles the demand.
        assert np.all(
            spiky["a"][36:44] > 1.9 * np.maximum(quiet["a"][36:44], 1)
        )
        assert np.array_equal(quiet["a"][55:], spiky["a"][55:])

    def test_failover_conserves_users(self):
        kwargs = dict(zones=_zones(), period_s=120.0, noise=0.0)
        normal = TrafficModel(**kwargs).demand(60)
        failed = TrafficModel(
            outages=(ZoneOutage("b", 20.0, 20.0),), **kwargs
        ).demand(60)
        assert np.all(failed["b"][20:40] == 0)
        total_normal = sum(normal.values())
        total_failed = sum(failed.values())
        # The dark zone's users land on the survivor; totals match up
        # to per-zone rounding.
        assert np.abs(total_failed - total_normal).max() <= len(_zones())
        assert np.array_equal(normal["b"][:20], failed["b"][:20])

    def test_validation(self):
        with pytest.raises(ValueError, match="unique"):
            TrafficModel(zones=(ZoneSpec("a", 1, 1.0), ZoneSpec("a", 1, 1.0)))
        with pytest.raises(ValueError, match="unknown zone"):
            TrafficModel(
                zones=(ZoneSpec("a", 1, 1.0),),
                outages=(ZoneOutage("nope", 0.0, 5.0),),
            )
        with pytest.raises(ValueError, match="unknown zone"):
            TrafficModel(
                zones=(ZoneSpec("a", 1, 1.0),),
                flash_crowds=(FlashCrowd(0.0, 5.0, zone="nope"),),
            )
        with pytest.raises(ValueError, match="positive population"):
            ZoneSpec("a", 1, 0.0)


# -- scoring -----------------------------------------------------------


class TestScoring:
    def test_perfectly_proportional_scores_one(self):
        u = np.linspace(0.0, 1.0, 50)
        metrics = energy_proportionality(u * 400.0, u, peak_power_w=400.0)
        assert metrics["ep_score"] == pytest.approx(1.0)
        assert metrics["proportionality_gap"] == pytest.approx(0.0)
        assert metrics["dynamic_range"] == pytest.approx(1.0)

    def test_flat_power_scores_low(self):
        u = np.linspace(0.0, 1.0, 50)
        power = np.full(50, 400.0)
        metrics = energy_proportionality(power, u, peak_power_w=400.0)
        assert metrics["dynamic_range"] == 0.0
        assert metrics["ep_score"] == pytest.approx(0.5, abs=0.02)
        assert metrics["proportionality_gap"] == pytest.approx(0.5, abs=0.02)

    def test_objective_and_regret(self):
        assert scenario_objective(1000.0, 10.0, drop_penalty_j=50.0) == 1500.0
        regret = policy_regret(1500.0, 1200.0)
        assert regret["regret_j"] == pytest.approx(300.0)
        assert regret["regret_pct"] == pytest.approx(25.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="equal-length"):
            energy_proportionality([1.0, 2.0], [0.5])
        with pytest.raises(ValueError, match="peak"):
            energy_proportionality([0.0, 0.0], [0.0, 0.0], peak_power_w=-1.0)


# -- budget allocation -------------------------------------------------


class TestBudgetAllocator:
    def test_requests_under_cap_get_headroom(self):
        allocator = BudgetAllocator(1000.0)
        budgets = allocator.allocate({"a": 300.0, "b": 100.0})
        assert sum(budgets.values()) == pytest.approx(1000.0)
        assert budgets["a"] >= 300.0 and budgets["b"] >= 100.0
        # Leftover splits proportionally to the requests.
        assert budgets["a"] == pytest.approx(300.0 + 600.0 * 0.75)

    def test_requests_over_cap_scale_down(self):
        allocator = BudgetAllocator(1000.0)
        budgets = allocator.allocate({"a": 1500.0, "b": 500.0})
        assert sum(budgets.values()) == pytest.approx(1000.0)
        assert budgets["a"] == pytest.approx(750.0)
        assert budgets["b"] == pytest.approx(250.0)

    def test_redistribution_counted_on_shift(self):
        allocator = BudgetAllocator(1000.0)
        allocator.allocate({"a": 400.0, "b": 400.0})
        assert allocator.redistributions == 0
        allocator.allocate({"a": 800.0, "b": 0.0})  # failover-like shift
        assert allocator.redistributions == 1


# -- subsystem manager (unit, fake nodes) ------------------------------


class _FakeNode(_NodeControl):
    """The real node state machine over a fake capacity (no simulator)."""

    def __init__(self, node_id, capacity=8, boot_time_s=0.0):
        self.node_id = node_id
        self.capacity = capacity
        self.boot_time_s = boot_time_s
        self.config = fast_config()
        self._init_control()


class _FakeCluster:
    def __init__(self, n_nodes):
        self.nodes = [_FakeNode(i) for i in range(n_nodes)]


_TABLE = NodePowerTable(
    peak_w=(230.0, 190.0, 165.0, 145.0), eff_capacity=(8, 6, 4, 3)
)


class TestSubsystemManager:
    def test_consolidates_naps_and_deepens_partial_node(self):
        cluster = _FakeCluster(6)
        manager = SubsystemManager("z", _TABLE)
        stats = manager.place(cluster, demand=20, budget_w=10_000.0)
        loads = [node.assigned_threads for node in cluster.nodes]
        assert loads == [8, 8, 4, 0, 0, 0]
        assert stats["unserved"] == 0
        # Partial node runs at the deepest pstate covering 4 threads.
        assert cluster.nodes[2].pstate == 2
        assert cluster.nodes[0].pstate == 0
        # One warm nap, the rest powered off.
        assert cluster.nodes[3].napping
        assert not cluster.nodes[4].powered
        assert not cluster.nodes[5].powered
        assert manager.worst_case_w(cluster) <= 10_000.0

    def test_tight_budget_never_exceeded(self):
        cluster = _FakeCluster(5)
        manager = SubsystemManager("z", _TABLE)
        manager.place(cluster, demand=16, budget_w=300.0)
        assert manager.worst_case_w(cluster) <= 300.0
        served = sum(
            node.assigned_threads
            for node in cluster.nodes
            if node.available
        )
        assert 0 < served < 16  # budget forces shedding

    def test_zero_demand_keeps_one_deep_hot_node(self):
        cluster = _FakeCluster(4)
        manager = SubsystemManager("z", _TABLE)
        manager.place(cluster, demand=0, budget_w=5_000.0)
        hot = [node for node in cluster.nodes if node.available]
        assert len(hot) == 1
        assert hot[0].pstate == len(_TABLE.peak_w) - 1
        assert cluster.nodes[1].napping

    def test_boot_denied_under_budget_pressure(self):
        cluster = _FakeCluster(3)
        cluster.nodes[1].powered = False
        cluster.nodes[2].powered = False
        manager = SubsystemManager("z", _TABLE)
        # Two actives wanted (afford = 465 // 230 = 2), but the running
        # node's worst case plus a boot's overshoots the activation
        # budget — the boot is denied, the cap is never risked.
        manager.place(cluster, demand=16, budget_w=465.0)
        assert cluster.nodes[0].powered
        assert not cluster.nodes[1].powered
        assert manager.boots_denied >= 1
        assert manager.worst_case_w(cluster) <= 465.0

    def test_sensed_feedback_moves_ceiling(self):
        manager = SubsystemManager("z", _TABLE, PolicyConfig())
        manager.note_sensed(950.0, 1000.0)  # above emergency_frac
        assert manager.ceiling == 1
        manager.note_sensed(950.0, 1000.0)
        assert manager.ceiling == 2
        manager.note_sensed(100.0, 1000.0)  # below relax_frac
        assert manager.ceiling == 1

    def test_request_w_covers_demand_at_efficient_state(self):
        cluster = _FakeCluster(4)
        manager = SubsystemManager("z", _TABLE)
        request = manager.request_w(cluster, demand=12)
        # p0 is the most watt-efficient per thread on this table
        # (230/8 < 145/3): two active nodes, one nap, one standby.
        assert request == pytest.approx(
            2 * 230.0 + NAP_POWER_W + STANDBY_POWER_W
        )

    def test_request_w_respects_the_ceiling(self):
        cluster = _FakeCluster(4)
        manager = SubsystemManager("z", _TABLE)
        manager.ceiling = 3  # deepest only
        request = manager.request_w(cluster, demand=12)
        assert request == pytest.approx(4 * 145.0)

    def test_table_validation(self):
        with pytest.raises(ValueError, match="align"):
            NodePowerTable(peak_w=(200.0,), eff_capacity=(8, 6))
        with pytest.raises(ValueError, match="at least one thread"):
            NodePowerTable(peak_w=(200.0,), eff_capacity=(0,))


# -- calibration -------------------------------------------------------


class TestCalibration:
    def test_bank_and_table_cover_the_ladder(self, config, calibration):
        n_states = len(config.cpu.dvfs_states)
        assert calibration.bank.pstates == tuple(range(n_states))
        assert calibration.table.n_states == n_states
        # Slower states draw less at full load; capacities shrink.
        assert list(calibration.table.peak_w) == sorted(
            calibration.table.peak_w, reverse=True
        )
        assert calibration.table.eff_capacity == (8, 6, 4, 3)
        # The margined bound clears the raw reference peak.
        assert calibration.table.peak_w[0] > calibration.reference_peak_w


# -- the datacenter ----------------------------------------------------


def _small_traffic():
    zones = (
        ZoneSpec("east", 3, 4.2e5),
        ZoneSpec("west", 3, 3.6e5, phase_s=20.0),
    )
    return TrafficModel(
        zones,
        users_per_thread=25_000.0,
        period_s=40.0,
        flash_crowds=(
            FlashCrowd(10.0, 8.0, magnitude=1.8, zone="east", ramp_s=2.0),
        ),
        outages=(ZoneOutage("west", 24.0, 8.0),),
        seed=17,
    )


class TestDatacenter:
    def test_cap_held_and_estimates_track_truth(self, config, calibration):
        cap = 0.65 * calibration.reference_peak_w * 6
        dc = Datacenter(
            _small_traffic(),
            cap,
            config=config,
            calibration=calibration,
            engine="fleet",
            seed=31,
        )
        report = dc.run(40)
        assert report.cap_violations == 0
        assert report.max_power_w <= cap
        estimated = np.asarray(report.estimated_power_w)
        true = np.asarray(report.power_w)
        assert np.isfinite(estimated).all()
        error = np.abs(estimated - true) / np.maximum(true, 1.0e-9)
        assert float(error.mean()) < 0.05
        doc = report.document()
        assert doc["energy_proportionality"]["ep_score"] > 0.5
        assert doc["served_thread_seconds"] > 0
        # /dc route serves the report.
        from repro.obs.http import ObservabilityServer

        server = ObservabilityServer(dc=dc)
        status, _, body = server.payload("/dc")
        assert status == 200
        import json

        assert (
            json.loads(body)["datacenter"]["cap_violations"] == 0
        )

    def test_dc_route_without_attachment_is_null(self):
        from repro.obs.http import ObservabilityServer

        status, _, body = ObservabilityServer().payload("/dc")
        import json

        assert status == 200
        assert json.loads(body)["datacenter"] is None

    def test_fleet_and_scalar_engines_agree(self, config, calibration):
        cap = 0.7 * calibration.reference_peak_w * 4
        zones = (ZoneSpec("a", 2, 2.8e5), ZoneSpec("b", 2, 2.4e5))
        traffic = TrafficModel(zones, period_s=24.0, seed=9)
        reports = {}
        for engine in ("fleet", "scalar"):
            dc = Datacenter(
                traffic,
                cap,
                config=config,
                calibration=calibration,
                engine=engine,
                seed=77,
            )
            reports[engine] = dc.run(24)
        assert reports["fleet"].power_w == reports["scalar"].power_w
        assert np.allclose(
            reports["fleet"].estimated_power_w,
            reports["scalar"].estimated_power_w,
            rtol=1.0e-9,
        )
        assert (
            reports["fleet"].served_threads
            == reports["scalar"].served_threads
        )

    def test_gauges_published(self, config, calibration):
        cap = 0.7 * calibration.reference_peak_w * 4
        zones = (ZoneSpec("a", 2, 2.8e5), ZoneSpec("b", 2, 2.4e5))
        traffic = TrafficModel(zones, period_s=20.0, seed=3)
        obs.enable()
        try:
            dc = Datacenter(
                traffic,
                cap,
                config=config,
                calibration=calibration,
                seed=41,
            )
            dc.run(8)
            assert obs.gauge_value("dc_power_watts") > 0
            assert obs.gauge_value("dc_estimated_power_watts") > 0
            assert obs.gauge_value("dc_cap_watts") == pytest.approx(cap)
            for zone in ("a", "b"):
                labels = {"zone": zone}
                assert obs.gauge_value("dc_budget_watts", labels) > 0
                assert obs.gauge_value("dc_nodes_active", labels) >= 0
        finally:
            obs.disable()


# -- the acceptance scenario ------------------------------------------


class TestAcceptanceScenario:
    def test_thousand_node_multizone_scenario(self, config, calibration):
        """ISSUE acceptance: >=1000 nodes, 3 zones, diurnal + flash +
        failover through the fleet engine; the cap holds, EP and
        estimated-vs-true regret are reported for both policies."""
        per_zone = 342  # 3 * 342 = 1026 nodes
        duration = 20
        zones = tuple(
            ZoneSpec(
                f"zone{i}",
                per_zone,
                0.75 * per_zone * 8 * 25_000.0,
                phase_s=i * duration / 6.0,
            )
            for i in range(3)
        )
        traffic = TrafficModel(
            zones,
            period_s=float(duration),
            flash_crowds=(
                FlashCrowd(4.0, 4.0, magnitude=1.6, zone="zone0", ramp_s=1.0),
            ),
            outages=(ZoneOutage("zone2", 11.0, 4.0),),
            seed=23,
        )
        cap = 0.6 * calibration.reference_peak_w * 3 * per_zone
        doc = run_scenario(
            traffic,
            cap,
            duration,
            config=config,
            engine="fleet",
            seed=13,
            calibration=calibration,
        )
        managed = doc["subsystem_estimated"]
        assert managed["n_nodes"] == 1026
        assert managed["cap_violations"] == 0
        assert managed["max_power_w"] <= cap
        assert managed["energy_proportionality"]["ep_score"] > 0.0
        # The dark zone's budget flowed to the survivors.
        assert managed["budget_redistributions"] >= 1
        # Regret of steering on estimates instead of ground truth.
        assert "regret" in doc
        assert doc["regret"]["true_objective_j"] > 0
        # The managed policy is more energy-proportional than the
        # static all-on baseline.
        assert doc["ep_comparison"]["ep_gain"] > 0.0
        assert doc["static"]["energy_proportionality"] is not None
