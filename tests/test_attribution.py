"""Tests for per-term attribution and the flight recorder.

Covers the tentpole contract from both ends: attribution is **exact**
(term watts sum to the prediction to 1e-9, for every model kind and
the fitted paper suite), opt-in on the estimator, carried through the
drift monitor's alerts, and reproduces the paper's Section 5 mcf
diagnosis; the flight recorder keeps a bounded ring of recent state
and dumps a self-contained bundle on drift alerts, failed sweeps,
unhandled exceptions and explicit requests, which ``repro-power
explain --bundle`` can pretty-print from a fresh process.
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np
import pytest

from repro import obs
from repro.baselines.heath import HeathOsModel
from repro.baselines.janzen import JanzenMemoryModel
from repro.baselines.zedlewski import ZedlewskiDiskModel
from repro.core.estimator import SystemPowerEstimator
from repro.core.events import Subsystem
from repro.core.features import FeatureSet
from repro.core.models import ConstantModel, PolynomialModel
from repro.obs import flight as flight_mod
from repro.obs.attribution import (
    Attribution,
    attribute_run,
    attribute_sample,
    diagnose,
)
from repro.obs.drift import DriftMonitor
from repro.obs.flight import BUNDLE_JSON, BUNDLE_METRICS, FlightRecorder, load_bundle
from repro.obs.live import LiveMonitor
from repro.simulator.config import fast_config
from repro.simulator.system import Server
from repro.workloads.registry import get_workload
from tests.conftest import TEST_SEED
from tests.test_models import synthetic_trace

#: The acceptance bound: attribution must be exact to float round-off.
ATOL = 1e-9


@pytest.fixture(autouse=True)
def clean_obs_and_flight():
    """Telemetry and the global recorder are process state; stay clean."""
    previous = flight_mod.set_global(None)
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
    flight_mod.set_global(previous)


def _assert_terms_sum_to(terms, expected):
    total = np.sum(list(terms.values()), axis=0)
    np.testing.assert_allclose(total, expected, atol=ATOL, rtol=0.0)


class TestAttributionExactness:
    def test_linear_model_terms_sum_exactly(self):
        trace = synthetic_trace()
        model = PolynomialModel(
            FeatureSet.of("active_fraction", "fetched_uops_per_cycle"),
            degree=1,
            coefficients=[35.0, 20.0, 5.0],
        )
        terms = model.attribute(trace)
        assert set(terms) == {
            "intercept",
            "active_fraction",
            "fetched_uops_per_cycle",
        }
        _assert_terms_sum_to(terms, model.predict(trace))
        np.testing.assert_allclose(terms["intercept"], 35.0)

    def test_quadratic_model_terms_sum_exactly(self):
        trace = synthetic_trace()
        model = PolynomialModel(
            FeatureSet.of("fetched_uops_per_cycle"),
            degree=2,
            coefficients=[28.0, 3.43, 7.66],
        )
        terms = model.attribute(trace)
        assert set(terms) == {
            "intercept",
            "fetched_uops_per_cycle",
            "fetched_uops_per_cycle^2",
        }
        _assert_terms_sum_to(terms, model.predict(trace))

    def test_constant_model_single_term(self):
        trace = synthetic_trace(n=5)
        terms = ConstantModel(19.9).attribute(trace)
        assert list(terms) == ["constant"]
        _assert_terms_sum_to(terms, np.full(5, 19.9))

    def test_paper_suite_attribution_is_exact(self, paper_suite, training_runs):
        for run in training_runs.values():
            trace = run.counters
            for subsystem, terms in paper_suite.attribute_all(trace).items():
                _assert_terms_sum_to(terms, paper_suite.predict(subsystem, trace))

    def test_janzen_baseline_attribution_is_exact(self, mcf_run):
        model = JanzenMemoryModel.fit(mcf_run)
        terms = model.attribute(mcf_run.counters)
        assert set(terms) == set(JanzenMemoryModel.TERM_NAMES)
        _assert_terms_sum_to(terms, model.predict(mcf_run.counters))

    def test_zedlewski_baseline_attribution_is_exact(self, diskload_run):
        model = ZedlewskiDiskModel.fit(diskload_run)
        terms = model.attribute(diskload_run.counters)
        assert set(terms) == set(ZedlewskiDiskModel.TERM_NAMES)
        _assert_terms_sum_to(terms, model.predict(diskload_run.counters))

    def test_heath_baseline_attribution_is_exact(self, gcc_run, diskload_run):
        model = HeathOsModel.fit(gcc_run, diskload_run)
        trace = gcc_run.counters
        terms = model.attribute(trace)
        _assert_terms_sum_to(
            terms, model.predict_cpu(trace) + model.predict_disk(trace)
        )


class TestEstimatorAttribution:
    def _sample(self, run, index=0):
        return {
            event: run.counters.per_cpu(event)[index]
            for event in run.counters.events
        }

    def test_disabled_by_default(self, paper_suite, idle_run):
        estimator = SystemPowerEstimator(paper_suite)
        estimate = estimator.estimate(self._sample(idle_run))
        assert estimator.attribute is False
        assert estimate.attribution is None
        assert "top terms" not in str(estimate)

    def test_enabled_terms_sum_to_subsystem_watts(self, paper_suite, gcc_run):
        estimator = SystemPowerEstimator(paper_suite, attribute=True)
        estimate = estimator.estimate(self._sample(gcc_run))
        attribution = estimate.attribution
        assert attribution is not None
        for subsystem, watts in estimate.subsystem_w.items():
            assert attribution.subsystem_total(subsystem) == pytest.approx(
                watts, abs=ATOL
            )
        assert attribution.total_w() == pytest.approx(estimate.total_w, abs=ATOL)

    def test_str_renders_breakdown_and_top_terms(self, paper_suite, gcc_run):
        estimator = SystemPowerEstimator(paper_suite, attribute=True)
        text = str(estimator.estimate(self._sample(gcc_run)))
        assert "total=" in text and "cpu=" in text
        assert "top terms:" in text

    def test_estimate_trace_attributes_every_sample(self, paper_suite, idle_run):
        estimator = SystemPowerEstimator(paper_suite, attribute=True)
        estimates = estimator.estimate_trace(idle_run.counters)
        assert estimates
        for estimate in estimates:
            assert estimate.attribution is not None
            assert estimate.attribution.total_w() == pytest.approx(
                estimate.total_w, abs=ATOL
            )

    def test_attribute_sample_matches_estimator(self, paper_suite, gcc_run):
        attribution = attribute_sample(paper_suite, gcc_run.counters, index=0)
        total = paper_suite.predict_total(gcc_run.counters)[0]
        assert attribution.total_w() == pytest.approx(float(total), abs=ATOL)


class TestAttributionObject:
    def _attribution(self):
        return Attribution(
            terms_w={
                "cpu": {"intercept": 35.0, "fetched_uops_per_cycle": -6.0},
                "disk": {"intercept": 10.0},
            },
            residual_w={"cpu": -4.0},
        )

    def test_top_terms_by_magnitude(self):
        attribution = self._attribution()
        assert attribution.top_terms("cpu", n=1) == [("intercept", 35.0)]
        # Ranked by |watts|, so the negative term beats the disk one.
        assert attribution.top_terms(n=3) == [
            ("cpu/intercept", 35.0),
            ("disk/intercept", 10.0),
            ("cpu/fetched_uops_per_cycle", -6.0),
        ]
        assert attribution.top_terms("nvram") == []

    def test_round_trip_and_totals(self):
        attribution = self._attribution()
        clone = Attribution.from_dict(
            json.loads(json.dumps(attribution.to_dict()))
        )
        assert clone == attribution
        assert clone.subsystem_total("cpu") == pytest.approx(29.0)
        assert clone.total_w() == pytest.approx(39.0)
        assert "W" in clone.describe()


class TestMcfDiagnosis:
    """The acceptance scenario: the paper's Section 5 analysis, computed."""

    def test_cpu_under_attribution_on_mcf(self, paper_suite, mcf_run):
        report = attribute_run(paper_suite, mcf_run, workload="mcf")
        cpu = report.subsystems["cpu"]
        assert "fetched_uops_per_cycle" in cpu.terms_w
        # Speculative execution is invisible to fetched uops: true CPU
        # power runs above the modeled watts (under-attribution).
        assert cpu.residual_w is not None and cpu.residual_w > 0
        assert cpu.error_pct is not None
        sentence = diagnose(cpu, n=1)
        assert "under-attributes" in sentence
        assert cpu.subsystem == "cpu"

    def test_report_rows_are_consistent(self, paper_suite, mcf_run):
        report = attribute_run(paper_suite, mcf_run, workload="mcf")
        assert report.workload == "mcf"
        assert report.n_samples == mcf_run.counters.n_samples
        for sub in report.subsystems.values():
            assert sum(sub.terms_w.values()) == pytest.approx(
                sub.modeled_w, abs=1e-6
            )
            shares = [sub.share_pct(term) for term in sub.terms_w]
            assert sum(shares) == pytest.approx(100.0, abs=1e-6)
        json.dumps(report.to_dict())  # serialisable as-is


class TestDriftAlertTopTerms:
    def test_firing_alert_names_offending_terms(self):
        monitor = DriftMonitor(min_windows=1)
        attribution = Attribution(
            terms_w={"cpu": {"intercept": 120.0, "fetched_uops_per_cycle": 80.0}}
        )
        transitions = monitor.observe(
            1.0, {"cpu": 200.0}, {"cpu": 100.0}, attribution=attribution
        )
        by_stream = {t.subsystem: t for t in transitions}
        assert by_stream["cpu"].top_terms[0] == ("intercept", 120.0)
        # The synthetic total stream namespaces terms across subsystems.
        assert by_stream["total"].top_terms[0] == ("cpu/intercept", 120.0)
        assert by_stream["cpu"].to_dict()["top_terms"] == [
            ["intercept", 120.0],
            ["fetched_uops_per_cycle", 80.0],
        ]

    def test_without_attribution_alerts_have_no_terms(self):
        monitor = DriftMonitor(min_windows=1)
        transitions = monitor.observe(1.0, {"cpu": 200.0}, {"cpu": 100.0})
        assert all(t.top_terms == () for t in transitions)
        assert monitor.unresolved()  # still listed for /healthz


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=4)
        for i in range(10):
            recorder.record(float(i), true_w=float(i))
        frames = recorder.frames()
        assert len(frames) == 4
        assert [f["t_s"] for f in frames] == [6.0, 7.0, 8.0, 9.0]

    def test_trigger_writes_loadable_bundle(self, tmp_path):
        recorder = FlightRecorder(out_dir=str(tmp_path))
        recorder.record(
            1.0,
            attribution=Attribution(terms_w={"cpu": {"intercept": 35.0}}),
            true_w=40.0,
            estimated_w=35.0,
        )
        path = recorder.trigger("unit.test", detail={"why": "testing"})
        assert path is not None
        assert os.path.isfile(os.path.join(path, BUNDLE_JSON))
        assert os.path.isfile(os.path.join(path, BUNDLE_METRICS))
        doc = load_bundle(path)
        assert doc["reason"] == "unit.test"
        assert doc["detail"] == {"why": "testing"}
        assert doc["frames"][0]["attribution"]["terms_w"]["cpu"]["intercept"] == 35.0
        assert doc["attribution"]["terms_w"]["cpu"]["intercept"] == 35.0
        # load_bundle accepts the bundle.json path too.
        assert load_bundle(os.path.join(path, BUNDLE_JSON)) == doc

    def test_trigger_without_out_dir_is_a_noop(self):
        recorder = FlightRecorder()
        assert recorder.trigger("nowhere") is None
        assert recorder.bundles == []

    def test_max_bundles_caps_flapping_alerts(self, tmp_path):
        recorder = FlightRecorder(out_dir=str(tmp_path), max_bundles=2)
        assert recorder.trigger("flap") is not None
        assert recorder.trigger("flap") is not None
        assert recorder.trigger("flap") is None
        assert len(recorder.bundles) == 2
        assert recorder.to_json()["bundles"] == recorder.bundles

    def test_load_bundle_rejects_non_bundles(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bundle(str(tmp_path / "missing"))
        stray = tmp_path / "stray.json"
        stray.write_text('{"kind": "other"}')
        with pytest.raises(ValueError, match="not a flight-recorder bundle"):
            load_bundle(str(stray))

    def test_excepthook_installs_chains_and_uninstalls(self, tmp_path):
        recorder = FlightRecorder(out_dir=str(tmp_path))
        previous = sys.excepthook
        recorder.install_excepthook()
        recorder.install_excepthook()  # idempotent
        assert sys.excepthook is not previous
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            sys.excepthook(*sys.exc_info())
        assert len(recorder.bundles) == 1
        doc = load_bundle(recorder.bundles[0])
        assert doc["reason"] == "unhandled_exception"
        assert doc["detail"] == {"type": "RuntimeError", "error": "boom"}
        recorder.uninstall_excepthook()
        assert sys.excepthook is previous

    def test_global_recorder_and_env_fallback(self, tmp_path, monkeypatch):
        assert flight_mod.trigger_global("no.recorder") is None
        recorder = FlightRecorder(out_dir=str(tmp_path / "global"))
        flight_mod.set_global(recorder)
        assert flight_mod.trigger_global("via.global") is not None
        assert recorder.bundles
        flight_mod.clear_global()
        # Without a global recorder, REPRO_FLIGHT_DIR drives an ad-hoc one.
        env_dir = tmp_path / "env"
        monkeypatch.setenv(flight_mod.FLIGHT_DIR_ENV, str(env_dir))
        path = flight_mod.dump_failure_bundle("ci.gate", detail={"n": 1})
        assert path is not None and str(env_dir) in path
        monkeypatch.delenv(flight_mod.FLIGHT_DIR_ENV)
        assert flight_mod.dump_failure_bundle("no.dir") is None


DURATION_TICKS = 2000  # 20 s at the fast config's 10 ms tick


class TestDriftAlertBundle:
    """Acceptance: an injected drift alert dumps a usable bundle."""

    def test_miscalibrated_monitor_dumps_on_firing(self, paper_suite, tmp_path):
        obs.enable()
        recorder = FlightRecorder(out_dir=str(tmp_path))
        monitor = LiveMonitor(
            SystemPowerEstimator(paper_suite.scaled(1.5), attribute=True),
            flight=recorder,
        )
        recorder.drift = monitor.drift
        recorder.windows = monitor.windows
        server = Server(fast_config(), get_workload("gcc"), seed=TEST_SEED)
        server.attach_monitor(monitor)
        server.run_ticks(DURATION_TICKS)
        assert "total" in monitor.drift.firing
        assert recorder.bundles
        doc = load_bundle(recorder.bundles[0])
        assert doc["reason"] == "drift.alert"
        assert doc["detail"]["state"] == "firing"
        # The alert names its offenders without a second query.
        assert doc["detail"]["top_terms"]
        assert doc["drift"]["firing"]
        assert doc["windows"]["windows"]
        assert "cpu" in doc["attribution"]["terms_w"]
        frames = [f for f in doc["frames"] if "true_w" in f]
        assert frames and frames[-1]["error_pct"] > 0


class TestSweepFailureBundle:
    """Acceptance: a FaultPlan-killed sweep leaves a post-mortem."""

    def test_permanent_failure_triggers_global_recorder(self, tmp_path):
        from repro.exec import FaultPlan, RetryPolicy, SweepSpec, sweep_specs

        recorder = FlightRecorder(out_dir=str(tmp_path))
        flight_mod.set_global(recorder)
        specs = [
            SweepSpec(
                workload="idle", seed=7, duration_s=5.0, config=fast_config()
            )
        ]
        result = sweep_specs(
            specs,
            n_workers=1,
            retry=RetryPolicy(max_attempts=1, base_delay=0.01),
            faults=FaultPlan(fail={0: 99}),
            allow_partial=True,
        )
        assert result.failed
        assert recorder.bundles
        doc = load_bundle(recorder.bundles[0])
        assert doc["reason"] == "sweep.failed"
        assert doc["detail"]["n_failed"] == 1
        assert "idle" in doc["detail"]["failed"]["0"]

    def test_sweep_error_path_also_dumps(self, tmp_path):
        from repro.exec import (
            FaultPlan,
            RetryPolicy,
            SweepError,
            SweepSpec,
            sweep_specs,
        )

        recorder = FlightRecorder(out_dir=str(tmp_path))
        flight_mod.set_global(recorder)
        specs = [
            SweepSpec(
                workload="idle", seed=7, duration_s=5.0, config=fast_config()
            )
        ]
        with pytest.raises(SweepError):
            sweep_specs(
                specs,
                n_workers=1,
                retry=RetryPolicy(max_attempts=1, base_delay=0.01),
                faults=FaultPlan(fail={0: 99}),
            )
        assert recorder.bundles


class TestExplainCli:
    COMMON = ["--duration", "20", "--tick-ms", "50", "--seed", "7"]

    def test_explain_prints_attribution_tables(self, capsys):
        from repro.cli import main

        assert main(["explain", "gcc", *self.COMMON]) == 0
        out = capsys.readouterr().out
        assert "attribution vs measured power" in out
        assert "Per-term attribution" in out
        assert "dominant term" in out
        assert "explain: cpu: estimate is carried by" in out

    def test_explain_rejects_unknown_workload(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["explain", "no-such-workload", *self.COMMON])

    def test_explain_bundle_pretty_prints_fresh_process_shape(
        self, tmp_path, capsys
    ):
        # Build a bundle the way the monitor would, then print it via
        # the CLI entry point a fresh process would hit.
        drift = DriftMonitor(min_windows=1)
        attribution = Attribution(
            terms_w={"cpu": {"intercept": 35.0, "fetched_uops_per_cycle": 6.0}},
            residual_w={"cpu": -4.0},
        )
        drift.observe(1.0, {"cpu": 200.0}, {"cpu": 100.0}, attribution=attribution)
        recorder = FlightRecorder(out_dir=str(tmp_path), drift=drift)
        recorder.record(
            1.0,
            attribution=attribution,
            true_w=100.0,
            estimated_w=200.0,
            error_pct=100.0,
        )
        path = recorder.trigger(
            "drift.alert", detail={"subsystem": "cpu", "state": "firing"}
        )
        assert path is not None

        from repro.cli import main

        assert main(["explain", "--bundle", path]) == 0
        out = capsys.readouterr().out
        assert "flight bundle: drift.alert" in out
        assert "trigger detail" in out
        assert "Latest attribution" in out
        assert "fetched_uops_per_cycle" in out
        assert "residual (est-true): cpu -4.0W" in out

    def test_explain_bundle_missing_path_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["explain", "--bundle", str(tmp_path / "nope")]) == 1
        assert "cannot read bundle" in capsys.readouterr().out
