"""Tests for the live observability layer (PR: streaming drift monitor).

Covers the four tentpole pieces and their satellites: histogram
quantiles (vs numpy), thread-safe metrics/tracing under concurrent
recording and scraping, the windowed delta aggregator, the EWMA drift
monitor's fire/resolve hysteresis and determinism, the
``LiveMonitor``/``ClusterObserver`` integration with the simulator
(including bit-identity of monitored runs), the HTTP exposition server
scraped mid-run, the estimator's bounded history, and the
``repro-power monitor`` CLI end to end.
"""

from __future__ import annotations

import json
import math
import os
import threading
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.core.estimator import SystemPowerEstimator
from repro.core.events import Subsystem
from repro.obs.drift import DEFAULT_SLO_PCT, DriftMonitor
from repro.obs.http import ObservabilityServer
from repro.obs.live import LiveMonitor, WindowedRegistry
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import Tracer
from repro.simulator.config import fast_config
from repro.simulator.system import Server
from repro.workloads.registry import get_workload
from tests.conftest import TEST_SEED


@pytest.fixture(autouse=True)
def clean_obs():
    """Telemetry is process-global; every test starts and ends clean."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


class TestHistogramQuantile:
    def test_matches_numpy_within_one_bucket_width(self, rng):
        edges = tuple(float(e) for e in range(1, 11))  # width-1 buckets
        values = rng.uniform(0.0, 10.0, size=500)
        hist = Histogram(edges)
        for value in values:
            hist.observe(value)
        for q in (0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            estimate = hist.quantile(q)
            exact = float(np.percentile(values, q * 100.0))
            assert abs(estimate - exact) <= 1.0 + 1e-9, (q, estimate, exact)

    def test_exact_at_bucket_edges(self):
        hist = Histogram((1.0, 2.0, 3.0, 4.0))
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        # With one observation per bucket, the q = k/4 quantile
        # interpolates exactly onto the k-th edge.
        for k, edge in enumerate((1.0, 2.0, 3.0, 4.0), start=1):
            assert hist.quantile(k / 4.0) == pytest.approx(edge)

    def test_overflow_bucket_clamps_to_last_edge(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(100.0)
        assert hist.quantile(1.0) == 2.0

    def test_empty_is_nan_and_bad_q_rejected(self):
        hist = Histogram((1.0,))
        assert math.isnan(hist.quantile(0.5))
        with pytest.raises(ValueError):
            hist.quantile(1.5)
        with pytest.raises(ValueError):
            hist.quantile(-0.1)


class TestThreadSafety:
    N_THREADS = 8
    N_OPS = 2000

    def test_registry_concurrent_recording_is_lossless(self):
        reg = MetricsRegistry()
        stop_scraping = threading.Event()

        def record():
            for i in range(self.N_OPS):
                reg.inc("hammer_total")
                reg.gauge("hammer_gauge", float(i))
                reg.observe("hammer_seconds", 0.01, buckets=(0.1, 1.0))

        def scrape():
            while not stop_scraping.is_set():
                reg.to_prometheus()
                reg.snapshot()

        scraper = threading.Thread(target=scrape)
        scraper.start()
        workers = [threading.Thread(target=record) for _ in range(self.N_THREADS)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        stop_scraping.set()
        scraper.join()

        expected = float(self.N_THREADS * self.N_OPS)
        assert reg.counters[("hammer_total", ())] == expected
        assert reg.histograms[("hammer_seconds", ())].count == expected

    def test_registry_survives_pickle(self):
        import pickle

        reg = MetricsRegistry()
        reg.inc("c_total", 2.0)
        reg.observe("h_seconds", 0.5, buckets=(1.0,))
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.snapshot() == reg.snapshot()
        clone.inc("c_total")  # the revived lock still works

    def test_tracer_concurrent_spans_keep_per_thread_nesting(self):
        tracer = Tracer()
        tracer.enabled = True
        n_spans = 50

        def trace(thread_id: int):
            for _ in range(n_spans):
                with tracer.span(f"outer-{thread_id}"):
                    with tracer.span(f"inner-{thread_id}"):
                        pass

        workers = [
            threading.Thread(target=trace, args=(i,)) for i in range(self.N_THREADS)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        events = tracer.events_copy()
        assert len(events) == self.N_THREADS * n_spans * 2
        ids = {e["id"] for e in events}
        assert len(ids) == len(events)  # no id ever handed out twice
        for i in range(self.N_THREADS):
            outer_ids = {e["id"] for e in events if e["name"] == f"outer-{i}"}
            inners = [e for e in events if e["name"] == f"inner-{i}"]
            assert len(inners) == n_spans
            # Nesting never crosses threads: every inner span's parent
            # is an outer span of the *same* thread.
            assert all(e["parent"] in outer_ids for e in inners)


class TestEstimatorHistoryBound:
    def _sample(self, run, index=0):
        return {
            event: run.counters.per_cpu(event)[index]
            for event in run.counters.events
        }

    def test_history_is_bounded(self, paper_suite, idle_run):
        estimator = SystemPowerEstimator(paper_suite, max_history=16)
        sample = self._sample(idle_run)
        for _ in range(50):
            estimator.estimate(sample)
        assert estimator.max_history == 16
        assert len(estimator.history) == 16
        # The *newest* estimates are the retained ones.
        times = [e.timestamp_s for e in estimator.history]
        assert times == sorted(times)
        assert times[-1] == pytest.approx(50.0)

    def test_unbounded_opt_in(self, paper_suite, idle_run):
        estimator = SystemPowerEstimator(paper_suite, max_history=None)
        assert estimator.max_history is None
        sample = self._sample(idle_run)
        n = 2 * 4096 // 16  # cheap but > any accidental default bound
        for _ in range(n):
            estimator.estimate(sample)
        assert len(estimator.history) == n

    def test_invalid_bound_rejected(self, paper_suite):
        with pytest.raises(ValueError):
            SystemPowerEstimator(paper_suite, max_history=0)


class TestSuiteScaled:
    def test_predictions_scale_uniformly(self, paper_suite, idle_run):
        scaled = paper_suite.scaled(1.5)
        base = paper_suite.predict_total(idle_run.counters)
        assert np.allclose(scaled.predict_total(idle_run.counters), base * 1.5)
        assert scaled.recipe_name.endswith("*1.5")

    def test_subset_scaling_leaves_others_alone(self, paper_suite, idle_run):
        scaled = paper_suite.scaled(2.0, subsystems=(Subsystem.CPU,))
        assert np.allclose(
            scaled.predict(Subsystem.CPU, idle_run.counters),
            paper_suite.predict(Subsystem.CPU, idle_run.counters) * 2.0,
        )
        assert np.allclose(
            scaled.predict(Subsystem.DISK, idle_run.counters),
            paper_suite.predict(Subsystem.DISK, idle_run.counters),
        )

    def test_non_finite_factor_rejected(self, paper_suite):
        with pytest.raises(ValueError):
            paper_suite.scaled(float("nan"))


class TestWindowedRegistry:
    def _registry_at(self, counter: float, gauge: float) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.inc("ticks_total", counter)
        reg.gauge("power_watts", gauge)
        return reg

    def test_counter_deltas_and_rate(self):
        windows = WindowedRegistry(window_s=5.0)
        reg = MetricsRegistry()
        for t, total in ((1.0, 10.0), (6.0, 30.0), (11.0, 60.0)):
            reg.reset()
            reg.inc("ticks_total", total)
            windows.ingest(t, reg)
        assert len(windows) == 3
        series = windows.series("ticks_total")
        assert series == [(0.0, 10.0), (5.0, 20.0), (10.0, 30.0)]
        assert windows.rate("ticks_total") == pytest.approx(60.0 / 15.0)
        assert windows.rate("ticks_total", last=1) == pytest.approx(30.0 / 5.0)

    def test_counter_reset_counts_full_value(self):
        windows = WindowedRegistry(window_s=1.0)
        windows.ingest(0.5, self._registry_at(100.0, 0.0))
        # The process restarted: the cumulative value went *down*.
        windows.ingest(1.5, self._registry_at(40.0, 0.0))
        assert windows.series("ticks_total") == [(0.0, 100.0), (1.0, 40.0)]

    def test_gauges_last_write_and_latest(self):
        windows = WindowedRegistry(window_s=10.0)
        windows.ingest(1.0, self._registry_at(0.0, 100.0))
        windows.ingest(2.0, self._registry_at(0.0, 150.0))  # same window
        windows.ingest(12.0, self._registry_at(0.0, 120.0))
        assert windows.series("power_watts") == [(0.0, 150.0), (10.0, 120.0)]
        assert windows.latest("power_watts") == 120.0
        assert windows.mean("power_watts") == pytest.approx(135.0)

    def test_histogram_deltas_merge_and_quantile(self):
        windows = WindowedRegistry(window_s=5.0)
        reg = MetricsRegistry()
        reg.observe("latency", 0.5, buckets=(1.0, 2.0))
        windows.ingest(1.0, reg)
        reg.observe("latency", 1.5, buckets=(1.0, 2.0))
        reg.observe("latency", 1.5, buckets=(1.0, 2.0))
        windows.ingest(6.0, reg)
        # First window got 1 observation, second the 2 new ones only.
        assert windows.series("latency") == [(0.0, 0.5), (5.0, 1.5)]
        assert windows.mean("latency") == pytest.approx((0.5 + 3.0) / 3)
        assert 1.0 <= windows.quantile("latency", 0.9) <= 2.0

    def test_sliding_edge_drops_oldest(self):
        windows = WindowedRegistry(window_s=1.0, max_windows=3)
        reg = MetricsRegistry()
        for t in range(6):
            reg.reset()
            reg.gauge("power_watts", float(t))
            windows.ingest(float(t) + 0.5, reg)
        assert len(windows) == 3
        assert windows.span_s == 3.0
        assert [start for start, _ in windows.series("power_watts")] == [
            3.0,
            4.0,
            5.0,
        ]

    def test_to_json_shape(self):
        windows = WindowedRegistry(window_s=2.0)
        windows.ingest(1.0, self._registry_at(5.0, 42.0))
        document = windows.to_json()
        json.dumps(document)  # must be serialisable as-is
        assert document["window_s"] == 2.0
        assert document["n_windows"] == 1
        window = document["windows"][0]
        assert window["counters"] == {"ticks_total": 5.0}
        assert window["gauges"] == {"power_watts": 42.0}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            WindowedRegistry(window_s=0.0)
        with pytest.raises(ValueError):
            WindowedRegistry(max_windows=0)


class TestWindowedRegistryEdgeCases:
    """Corner cases of windowed aggregation and quantile estimation."""

    def test_quantile_without_histograms_is_nan(self):
        windows = WindowedRegistry(window_s=1.0)
        # No windows at all, then a window with no such histogram.
        assert math.isnan(windows.quantile("latency", 0.5))
        reg = MetricsRegistry()
        reg.gauge("power_watts", 1.0)
        windows.ingest(0.5, reg)
        assert math.isnan(windows.quantile("latency", 0.5))

    def test_single_sample_window(self):
        windows = WindowedRegistry(window_s=1.0)
        reg = MetricsRegistry()
        reg.observe("latency", 1.5, buckets=(1.0, 2.0))
        windows.ingest(0.5, reg)
        assert windows.mean("latency") == pytest.approx(1.5)
        # One observation: every quantile interpolates inside its
        # bucket, so the estimate stays within the (1, 2] bounds and
        # q = 1 lands exactly on the upper edge.
        for q in (0.01, 0.5, 0.99):
            assert 1.0 < windows.quantile("latency", q) <= 2.0
        assert windows.quantile("latency", 1.0) == pytest.approx(2.0)

    def test_counter_reset_mid_window(self):
        windows = WindowedRegistry(window_s=10.0)
        reg = MetricsRegistry()
        reg.inc("ticks_total", 100.0)
        windows.ingest(1.0, reg)
        # The process restarted *inside* the same window: cumulative
        # went down, so the full restarted value joins the earlier
        # delta instead of producing a negative one.
        reg.reset()
        reg.inc("ticks_total", 40.0)
        windows.ingest(2.0, reg)
        assert windows.series("ticks_total") == [(0.0, 140.0)]
        assert windows.rate("ticks_total") == pytest.approx(14.0)

    def test_histogram_reset_mid_window_counts_new_observations(self):
        windows = WindowedRegistry(window_s=10.0)
        reg = MetricsRegistry()
        reg.observe("latency", 0.5, buckets=(1.0, 2.0))
        reg.observe("latency", 0.5, buckets=(1.0, 2.0))
        windows.ingest(1.0, reg)
        # Restarted mid-window: the cumulative count went 2 -> 1, so
        # the whole restarted histogram is new data.
        reg.reset()
        reg.observe("latency", 1.5, buckets=(1.0, 2.0))
        windows.ingest(2.0, reg)
        assert windows.mean("latency") == pytest.approx((0.5 + 0.5 + 1.5) / 3)

    def test_quantile_at_edges_under_merged_registries(self):
        # One observation per bucket, split across two worker
        # registries whose snapshots land in different windows; the
        # cross-window merged quantile must interpolate exactly onto
        # the bucket edges, same as one histogram holding all four.
        edges = (1.0, 2.0, 3.0, 4.0)
        windows = WindowedRegistry(window_s=5.0)
        worker_a = MetricsRegistry()
        worker_a.observe("latency", 1.0, buckets=edges)
        worker_a.observe("latency", 2.0, buckets=edges)
        windows.ingest(1.0, worker_a)
        worker_b = MetricsRegistry()
        worker_b.observe("latency", 3.0, buckets=edges)
        worker_b.observe("latency", 4.0, buckets=edges)
        # The second snapshot arrives merged on top of the first
        # worker's counts (the parent folds snapshots cumulatively).
        worker_a.merge(worker_b)
        windows.ingest(6.0, worker_a)
        reference = Histogram(edges)
        for value in (1.0, 2.0, 3.0, 4.0):
            reference.observe(value)
        for k, edge in enumerate(edges, start=1):
            q = k / 4.0
            assert windows.quantile("latency", q) == pytest.approx(edge)
            assert windows.quantile("latency", q) == pytest.approx(
                reference.quantile(q)
            )


class TestWindowEviction:
    """The on_evict persistence hook (feeds the durable TSDB sink)."""

    def test_evicted_window_identical_to_pre_eviction_series(self):
        evicted = []
        windows = WindowedRegistry(
            window_s=1.0, max_windows=2, on_evict=evicted.append
        )
        reg = MetricsRegistry()
        for t in range(2):
            reg.reset()
            reg.inc("ticks_total", 10.0 * (t + 1))
            reg.gauge("power_watts", 100.0 + t)
            windows.ingest(float(t) + 0.5, reg)
        # What series() reports for the window about to fall off.
        before = {
            "counters": windows.series("ticks_total")[0],
            "gauges": windows.series("power_watts")[0],
        }
        reg.reset()
        reg.inc("ticks_total", 30.0)
        reg.gauge("power_watts", 102.0)
        windows.ingest(2.5, reg)  # forces the first window out
        assert len(evicted) == 1
        window = evicted[0]
        assert (window.start_s, next(iter(window.counters.values()))) == (
            before["counters"][0],
            before["counters"][1],
        )
        assert (window.start_s, next(iter(window.gauges.values()))) == (
            before["gauges"][0],
            before["gauges"][1],
        )
        # The hook saw the dropped window; queries kept the rest.
        assert [s for s, _ in windows.series("power_watts")] == [1.0, 2.0]

    def test_max_windows_one_with_backwards_clock_evicts_in_order(self):
        evicted = []
        windows = WindowedRegistry(
            window_s=1.0, max_windows=1, on_evict=evicted.append
        )
        reg = MetricsRegistry()
        # Timestamps jitter backwards mid-stream; the registry folds
        # non-monotonic ticks into the current window rather than
        # resurrecting an evicted one, so eviction stays ordered.
        for t, gauge in ((0.5, 1.0), (1.5, 2.0), (1.2, 3.0), (2.5, 4.0)):
            reg.reset()
            reg.gauge("power_watts", gauge)
            windows.ingest(t, reg)
        drained = windows.drain()
        assert drained == 1
        starts = [window.start_s for window in evicted]
        assert starts == sorted(starts) == [0.0, 1.0, 2.0]
        # The backwards tick (1.2) landed in the 1s window, last write
        # wins for gauges.
        assert next(iter(evicted[1].gauges.values())) == 3.0

    def test_drain_is_idempotent(self):
        evicted = []
        windows = WindowedRegistry(window_s=1.0, on_evict=evicted.append)
        reg = MetricsRegistry()
        reg.gauge("power_watts", 1.0)
        windows.ingest(0.5, reg)
        assert windows.drain() == 1
        assert windows.drain() == 0
        assert len(evicted) == 1
        assert len(windows) == 0


class TestDriftMonitor:
    WATTS = {"cpu": 100.0}

    def _feed(self, monitor, error_pct, n, t0=0.0):
        """n windows with a constant relative error; returns transitions."""
        out = []
        estimated = {"cpu": 100.0 * (1.0 + error_pct / 100.0)}
        for i in range(n):
            out += monitor.observe(t0 + i + 1.0, estimated, self.WATTS)
        return out

    def test_healthy_stream_never_fires(self):
        monitor = DriftMonitor()
        assert self._feed(monitor, 4.0, 20) == []
        assert monitor.firing == ()
        assert monitor.error_pct("cpu") == pytest.approx(4.0)

    def test_fires_only_after_min_windows(self):
        monitor = DriftMonitor(min_windows=3)
        transitions = self._feed(monitor, 50.0, 3)
        assert [t.state for t in transitions] == ["firing", "firing"]
        assert {t.subsystem for t in transitions} == {"cpu", "total"}
        assert transitions[0].timestamp_s == 3.0
        assert transitions[0].threshold_pct == DEFAULT_SLO_PCT

    def test_resolves_with_hysteresis(self):
        monitor = DriftMonitor(slo_pct=10.0, alpha=1.0, resolve_ratio=0.8)
        self._feed(monitor, 50.0, 3)
        assert "cpu" in monitor.firing
        # Above resolve threshold (8 %) but below the SLO: still firing.
        assert self._feed(monitor, 9.0, 5, t0=10.0) == []
        assert "cpu" in monitor.firing
        transitions = self._feed(monitor, 1.0, 1, t0=20.0)
        assert {t.subsystem for t in transitions} == {"cpu", "total"}
        assert all(t.state == "resolved" for t in transitions)
        assert monitor.firing == ()

    def test_deterministic_replay(self, rng):
        errors = rng.uniform(0.0, 30.0, size=60)

        def run():
            monitor = DriftMonitor()
            history = []
            for i, err in enumerate(errors):
                est = {"cpu": 100.0 + err, "disk": 20.0}
                true = {"cpu": 100.0, "disk": 20.0}
                monitor.observe(float(i), est, true)
            return [a.to_dict() for a in monitor.history()]

        assert run() == run()

    def test_enum_keys_normalised(self):
        monitor = DriftMonitor()
        monitor.observe(1.0, {Subsystem.CPU: 110.0}, {"cpu": 100.0})
        assert monitor.error_pct(Subsystem.CPU) == pytest.approx(10.0)
        assert monitor.error_pct("total") == pytest.approx(10.0)

    def test_alert_events_and_metrics_emitted(self):
        obs.enable()
        monitor = DriftMonitor(min_windows=1)
        monitor.observe(1.0, {"cpu": 200.0}, {"cpu": 100.0})
        events = [e for e in obs.tracer().events if e["name"] == "drift.alert"]
        assert len(events) == 2  # cpu + total
        attrs = events[0]["attrs"]
        assert attrs["state"] == "firing"
        assert attrs["sim_time_s"] == 1.0
        counters = obs.registry().counters
        assert (
            counters[("drift_alerts_total", (("state", "firing"), ("subsystem", "cpu")))]
            == 1.0
        )

    def test_to_json_document(self):
        monitor = DriftMonitor(min_windows=1)
        self._feed(monitor, 50.0, 2)
        document = monitor.to_json()
        json.dumps(document)
        assert document["slo_pct"] == DEFAULT_SLO_PCT
        assert set(document["firing"]) == {"cpu", "total"}
        assert document["streams"]["cpu"]["firing"] is True
        assert document["history"][0]["state"] == "firing"

    def test_invalid_parameters_rejected(self):
        for kwargs in (
            {"slo_pct": 0.0},
            {"alpha": 0.0},
            {"alpha": 1.5},
            {"min_windows": 0},
            {"resolve_ratio": 0.0},
        ):
            with pytest.raises(ValueError):
                DriftMonitor(**kwargs)


DURATION_TICKS = 2000  # 20 s at the fast config's 10 ms tick


def _monitored_server(suite, workload="gcc", **monitor_kwargs):
    server = Server(fast_config(), get_workload(workload), seed=TEST_SEED)
    monitor = LiveMonitor(SystemPowerEstimator(suite), **monitor_kwargs)
    server.attach_monitor(monitor)
    return server, monitor


class TestLiveMonitorIntegration:
    def test_monitored_run_is_bit_identical(self, paper_suite):
        plain = Server(fast_config(), get_workload("gcc"), seed=TEST_SEED)
        plain.run_ticks(DURATION_TICKS)
        monitored, monitor = _monitored_server(paper_suite)
        monitored.run_ticks(DURATION_TICKS)
        assert monitor.n_windows > 10  # the monitor actually ran
        assert monitored.now_s == plain.now_s
        assert monitored.energy._energy_j == plain.energy._energy_j
        assert monitored.sampler.n_samples == plain.sampler.n_samples

    def test_live_samples_track_ground_truth(self, paper_suite):
        obs.enable()
        server, monitor = _monitored_server(paper_suite)
        server.run_ticks(DURATION_TICKS)
        sample = monitor.last
        assert sample is not None
        assert set(sample.true_w) == {s.value for s in Subsystem}
        # Estimating the machine the suite was fitted on: errors stay
        # well inside the paper's 9 % bound, so nothing fires.
        assert sample.total_error_pct < DEFAULT_SLO_PCT
        assert monitor.drift.firing == ()
        gauges = obs.registry().gauges
        key = ("live_power_watts", (("source", "true"), ("subsystem", "total")))
        assert gauges[key] == pytest.approx(sample.total_true_w)
        assert len(monitor.windows) > 0

    def test_miscalibration_fires_then_restore_resolves(self, paper_suite):
        obs.enable()
        server, monitor = _monitored_server(paper_suite.scaled(1.5))
        server.run_ticks(DURATION_TICKS // 2)
        assert "total" in monitor.drift.firing
        monitor.set_suite(paper_suite)
        server.run_ticks(2 * DURATION_TICKS)
        assert monitor.drift.firing == ()
        states = [a.state for a in monitor.drift.history()]
        assert "firing" in states and "resolved" in states
        trace_states = [
            e["attrs"]["state"]
            for e in obs.tracer().events
            if e["name"] == "drift.alert"
        ]
        assert trace_states.count("firing") == trace_states.count("resolved")


def _fetch(url: str) -> str:
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return response.read().decode("utf-8")


class TestObservabilityHTTP:
    def test_routes_and_lifecycle(self):
        drift = DriftMonitor(min_windows=1)
        drift.observe(1.0, {"cpu": 200.0}, {"cpu": 100.0})
        windows = WindowedRegistry(window_s=1.0)
        registry = MetricsRegistry()
        registry.inc("requests_total", 3.0)
        with ObservabilityServer(
            registry=registry, drift=drift, windows=windows
        ) as endpoint:
            assert endpoint.running and endpoint.port != 0
            assert "requests_total 3" in _fetch(endpoint.url("/metrics"))
            metrics = json.loads(_fetch(endpoint.url("/metrics.json")))
            assert metrics["counters"][0]["name"] == "requests_total"
            alerts = json.loads(_fetch(endpoint.url("/alerts")))
            # /alerts aggregates every alert surface; unattached ones
            # are explicit nulls rather than missing keys (or a 404).
            assert set(alerts["drift"]["firing"]) == {"cpu", "total"}
            assert alerts["slo"] is None
            assert alerts["dc"] is None
            assert alerts["alerts"] is None
            # The attached drift monitor is firing, so health is a 503
            # naming the unresolved alerts.
            with pytest.raises(urllib.error.HTTPError) as err:
                _fetch(endpoint.url("/healthz"))
            assert err.value.code == 503
            health = json.loads(err.value.read().decode("utf-8"))
            assert health["status"] == "drifting"
            assert set(health["firing"]) == {"cpu", "total"}
            assert {a["subsystem"] for a in health["alerts"]} == {"cpu", "total"}
            assert all(a["state"] == "firing" for a in health["alerts"])
            assert "windows" in json.loads(_fetch(endpoint.url("/windows")))
            with pytest.raises(urllib.error.HTTPError) as err:
                _fetch(endpoint.url("/no-such-route"))
            assert err.value.code == 404
        assert not endpoint.running
        endpoint.stop()  # idempotent

    def test_healthz_ok_while_drift_is_healthy(self):
        drift = DriftMonitor(min_windows=1)
        drift.observe(1.0, {"cpu": 104.0}, {"cpu": 100.0})  # 4 % < SLO
        with ObservabilityServer(drift=drift) as endpoint:
            health = json.loads(_fetch(endpoint.url("/healthz")))
            assert health["status"] == "ok"
            assert set(health["routes"]) == set(ObservabilityServer.ROUTES)
            assert "firing" not in health and "alerts" not in health

    def test_attribution_and_flightrecorder_routes(self, tmp_path):
        from repro.obs.attribution import Attribution
        from repro.obs.flight import BUNDLE_JSON, FlightRecorder

        recorder = FlightRecorder(out_dir=str(tmp_path))
        recorder.record(
            1.0,
            attribution=Attribution(
                terms_w={"cpu": {"intercept": 35.0, "fetched_uops_per_cycle": 6.0}}
            ),
            true_w=45.0,
        )
        with ObservabilityServer(flight=recorder) as endpoint:
            doc = json.loads(_fetch(endpoint.url("/attribution")))
            assert doc["attribution"]["terms_w"]["cpu"]["intercept"] == 35.0
            status = json.loads(_fetch(endpoint.url("/flightrecorder")))
            assert status["enabled"] is True
            assert status["n_frames"] == 1 and status["bundles"] == []
            dumped = json.loads(_fetch(endpoint.url("/flightrecorder?dump=1")))
            assert dumped["dumped"] is not None
            assert os.path.isfile(os.path.join(dumped["dumped"], BUNDLE_JSON))

    def test_attribution_and_flightrecorder_routes_without_recorder(self):
        with ObservabilityServer() as endpoint:
            doc = json.loads(_fetch(endpoint.url("/flightrecorder")))
            assert doc == {"enabled": False, "bundles": []}
            assert json.loads(_fetch(endpoint.url("/attribution"))) == {
                "attribution": None
            }

    def test_scrape_while_run_progresses(self, paper_suite):
        obs.enable()
        server, monitor = _monitored_server(paper_suite)
        with ObservabilityServer(drift=monitor.drift, windows=monitor.windows) as endpoint:
            server.run_ticks(DURATION_TICKS // 4)
            first = _fetch(endpoint.url("/metrics"))
            assert 'live_power_watts{source="true",subsystem="total"}' in first
            windows_before = len(monitor.windows)
            server.run_ticks(DURATION_TICKS // 4)
            second = _fetch(endpoint.url("/metrics"))
            assert "live_power_watts" in second
            assert len(monitor.windows) >= windows_before
            ticks = json.loads(_fetch(endpoint.url("/metrics.json")))
            names = {entry["name"] for entry in ticks["counters"]}
            assert "live_windows_total" in names


class TestClusterTelemetry:
    def _cluster(self, n_nodes=2):
        from repro.cluster import Cluster

        return Cluster(n_nodes=n_nodes, config=fast_config(), seed=TEST_SEED)

    def test_manager_decisions_land_in_trace(self):
        from repro.cluster import PowerAwareManager

        obs.enable()
        cluster = self._cluster(3)
        manager = PowerAwareManager(headroom_threads=2)
        demand = [2] * 5 + [20] * 5
        cluster.run(demand, manager)
        names = [e["name"] for e in obs.tracer().events]
        assert "cluster.placement" in names
        assert "cluster.power_down" in names
        assert "cluster.power_up" in names
        placements = [
            e["attrs"]
            for e in obs.tracer().events
            if e["name"] == "cluster.placement"
        ]
        assert placements[0]["previous"] is None
        assert placements[-1]["nodes_needed"] > placements[0]["nodes_needed"]

    def test_node_power_gauges_match_cluster_trace(self):
        from repro.cluster import StaticManager

        obs.enable()
        cluster = self._cluster(2)
        trace = cluster.run([4] * 10, StaticManager())
        gauges = obs.registry().gauges
        for node_id in range(2):
            labels = (("node", str(node_id)),)
            assert gauges[("cluster_node_power_watts", labels)] == pytest.approx(
                trace.node_power_w[node_id][-1]
            )
            assert gauges[("cluster_node_energy_joules", labels)] == pytest.approx(
                trace.node_energy_j(node_id), rel=1e-9
            )
        assert gauges[("cluster_power_watts", ())] == pytest.approx(
            trace.power_w[-1]
        )

    def test_observer_drift_fires_then_resolves(self, paper_suite):
        from repro.cluster import StaticManager
        from repro.obs.live import ClusterObserver

        cluster = self._cluster(2)
        manager = StaticManager()
        observer = ClusterObserver(suite=paper_suite.scaled(1.5), window_s=1.0)
        cluster.run([6] * 8, manager, observer=observer)
        assert "total" in observer.drift.firing
        observer.set_suite(paper_suite)
        cluster.run([6] * 22, manager, observer=observer, start_s=8.0)
        assert observer.drift.firing == ()
        history = observer.drift.history()
        fired = [a for a in history if a.state == "firing"]
        resolved = [a for a in history if a.state == "resolved"]
        assert fired and resolved
        # start_s keeps the observer's clock monotonic across slices.
        assert all(a.timestamp_s > 8.0 for a in resolved)
        assert observer.n_seconds == 30

    def test_observer_without_suite_still_windows(self):
        from repro.cluster import StaticManager
        from repro.obs.live import ClusterObserver

        obs.enable()
        cluster = self._cluster(2)
        observer = ClusterObserver(window_s=2.0)
        cluster.run([4] * 6, StaticManager(), observer=observer)
        assert observer.estimator is None
        assert len(observer.windows) > 0
        assert observer.windows.latest("cluster_power_watts") > 0.0


class TestMonitorCli:
    COMMON = ["--duration", "20", "--tick-ms", "50", "--refresh", "5", "--seed", "7"]

    def test_monitor_runs_and_summarises(self, capsys):
        from repro.cli import main

        assert main(["monitor", "--workload", "idle", *self.COMMON]) == 0
        out = capsys.readouterr().out
        assert "endpoint at http://127.0.0.1:" in out
        assert "true" in out and "ticks/s" in out
        assert "done —" in out

    def test_monitor_perturbation_raises_and_resolves_alerts(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        telemetry = str(tmp_path / "tel")
        code = main(
            [
                "monitor",
                "gcc",
                *self.COMMON,
                "--duration",
                "30",
                "--perturb",
                "1.5",
                "--restore-at",
                "12",
                "--telemetry",
                telemetry,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ALERT   firing" in out
        assert "calibrated suite restored" in out
        assert "ALERT resolved" in out
        with open(os.path.join(telemetry, "alerts.json"), encoding="utf-8") as fh:
            alerts = json.load(fh)
        assert alerts["firing"] == []
        states = [a["state"] for a in alerts["history"]]
        assert "firing" in states and "resolved" in states
        trace_path = os.path.join(telemetry, obs.TRACE_JSONL)
        drift_events = [
            json.loads(line)
            for line in open(trace_path, encoding="utf-8")
            if '"drift.alert"' in line
        ]
        assert drift_events and all(
            e["name"] == "drift.alert" for e in drift_events
        )
        prom = open(
            os.path.join(telemetry, obs.METRICS_PROM), encoding="utf-8"
        ).read()
        assert "live_power_watts" in prom

    def test_monitor_cluster_mode(self, capsys):
        from repro.cli import main

        code = main(["monitor", "--nodes", "2", *self.COMMON])
        assert code == 0
        out = capsys.readouterr().out
        assert "cluster of 2 node(s)" in out
        assert "nodes on" in out

    def test_monitor_requires_workload_or_nodes(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["monitor", *self.COMMON])
