"""Tests for durable telemetry (PR: embedded TSDB + unified alert plane).

Covers the store end to end: delta-of-delta/varint codec round-trips,
the single-atomic-commit crash-safety protocol (restart, unflushed-tail
loss, corrupt state, orphan segments), tiered downsampling with *exact*
min/mean/max/count rollups across compaction and restart, per-tier
retention, the query engine (matchers, instant, range, step
aggregation, label grouping, tier selection, rate, quantiles),
recording rules, the AlertManager folding drift/SLO/dc sources into one
deduplicated plane with silences and ``alerts_firing`` persistence, the
``WindowSink`` bridge, the HTTP query/alert routes, and the
``repro-power query`` / ``obs --store`` CLI.
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro import obs
from repro.cli import main
from repro.obs.alertmgr import Alert, AlertManager, dedup_key
from repro.obs.http import ObservabilityServer
from repro.obs.rules import DEFAULT_RULES, RecordingRule, RuleEngine
from repro.obs.tsdb import (
    DEFAULT_RETENTION_S,
    TSDB,
    WindowSink,
    parse_duration,
    parse_matchers,
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


@pytest.fixture()
def store(tmp_path):
    return TSDB(str(tmp_path / "store"))


def _fill(db, name="power_watts", labels=None, n=100, t0=0.0, dt=1.0, f=None):
    appender = db.appender(name, labels or {"node": "a"})
    points = []
    for i in range(n):
        t = t0 + i * dt
        value = f(i) if f is not None else 100.0 + math.sin(i / 7.0) * 25.0
        assert appender.append(t, value)
        points.append((t, value))
    return points


class TestParsing:
    def test_parse_duration(self):
        assert parse_duration("90") == 90.0
        assert parse_duration("90s") == 90.0
        assert parse_duration("5m") == 300.0
        assert parse_duration("2h") == 7200.0
        assert parse_duration("7d") == 7 * 86400.0

    def test_parse_matchers(self):
        assert parse_matchers(["k=v", "node=~web-.*"]) == {
            "k": "v",
            "node": "=~web-.*",
        }
        assert parse_matchers(None) == {}
        with pytest.raises(ValueError):
            parse_matchers(["no-separator"])


class TestCodecRoundTrip:
    def test_uneven_timestamps_and_exact_floats(self, store):
        # Every value-encoding path: repeats, small integers, negative
        # integers, and raw IEEE doubles that must survive bit-exactly.
        values = [1.0, 1.0, 1.0, 7.0, -13.0, 0.1, 0.1 + 0.2, 1e-300, -2.5e17]
        times = [0.0, 0.001, 0.002, 5.0, 5.001, 100.0, 101.5, 3600.0, 3600.001]
        appender = store.appender("mixed", None)
        for t, value in zip(times, values):
            assert appender.append(t, value)
        (series,) = store.select("mixed")
        assert [v for _, v in series["points"]] == values
        for got, want in zip(series["points"], times):
            assert got[0] == pytest.approx(want, abs=5e-4)

    def test_out_of_order_appends_dropped_and_counted(self, store):
        appender = store.appender("m", None)
        assert appender.append(10.0, 1.0)
        assert not appender.append(9.0, 2.0)
        assert appender.append(10.0, 3.0)  # equal timestamps are fine
        assert store.document()["shards"]["m"]["dropped_out_of_order"] == 1

    def test_many_points_round_trip_after_restart(self, store):
        points = _fill(store, n=5000, dt=0.25)
        store.flush()
        reopened = TSDB(store.root)
        (series,) = reopened.select("power_watts")
        assert len(series["points"]) == 5000
        for (gt, gv), (wt, wv) in zip(series["points"], points):
            assert gv == wv
            assert gt == pytest.approx(wt, abs=5e-4)


class TestCrashSafety:
    def test_unflushed_tail_lost_flushed_prefix_intact(self, store):
        _fill(store, n=50)
        store.flush()
        _fill(store, n=50, t0=50.0)  # never flushed
        reopened = TSDB(store.root)
        (series,) = reopened.select("power_watts")
        assert len(series["points"]) == 50
        # The reopened store accepts appends continuing the series.
        assert reopened.append("power_watts", {"node": "a"}, 50.0, 1.0)

    def test_corrupt_state_resets_shard_not_store(self, store, caplog):
        _fill(store, n=10)
        store.flush()
        state = os.path.join(store.root, "power_watts", "state.bin")
        with open(state, "wb") as handle:
            handle.write(b"garbage")
        reopened = TSDB(store.root)
        assert reopened.select("power_watts") == []

    def test_orphan_segments_removed_on_open(self, store):
        _fill(store, n=10)
        store.flush()
        orphan = os.path.join(store.root, "power_watts", "raw-999999.seg")
        with open(orphan, "wb") as handle:
            handle.write(b"leftover from a seal crash")
        reopened = TSDB(store.root)
        reopened.select("power_watts")  # faults the shard in
        assert not os.path.exists(orphan)

    def test_flush_is_the_only_commit_point(self, store):
        _fill(store, n=10)
        shard_dir = os.path.join(store.root, "power_watts")
        assert not os.path.exists(os.path.join(shard_dir, "state.bin"))
        store.flush()
        assert os.path.exists(os.path.join(shard_dir, "state.bin"))


class TestRollups:
    def test_rollup_cells_exact_against_raw(self, store):
        points = _fill(store, n=1000, dt=0.5, f=lambda i: (i * 37) % 101 - 50.0)
        for tier, width in (("10s", 10.0), ("2m", 120.0)):
            (series,) = store.select_cells("power_watts", tier=tier)
            assert series["cells"], tier
            total = 0
            for start_s, vmin, vmax, mean, count in series["cells"]:
                raw = [v for t, v in points if start_s <= t < start_s + width]
                assert count == len(raw)
                assert vmin == min(raw)
                assert vmax == max(raw)
                assert mean == pytest.approx(sum(raw) / len(raw), rel=1e-12)
                total += count
            assert total == len(points)

    def test_rollups_exact_across_compaction_and_restart(self, tmp_path):
        # A tiny seal threshold forces real segment compaction cycles.
        db = TSDB(str(tmp_path / "s"), seal_bytes=256)
        points = []
        for chunk in range(20):
            points += _fill(db, n=50, t0=chunk * 50.0, f=lambda i: float(i % 17))
            db.flush()
        assert any(
            count > 0
            for count in db.document()["shards"]["power_watts"]["segments"].values()
        )
        reopened = TSDB(str(tmp_path / "s"))
        (raw,) = reopened.select("power_watts")
        assert [v for _, v in raw["points"]] == [v for _, v in points]
        (cells,) = reopened.select_cells("power_watts", tier="10s")
        for start_s, vmin, vmax, mean, count in cells["cells"]:
            window = [v for t, v in points if start_s <= t < start_s + 10.0]
            assert (vmin, vmax, count) == (min(window), max(window), len(window))
            assert mean == pytest.approx(sum(window) / len(window), rel=1e-12)

    def test_open_tail_visible_in_rollups_before_seal(self, store):
        # Nothing sealed, nothing flushed: rollup queries still see
        # every appended sample (the unfolded open-raw tail).
        _fill(store, n=25)
        (series,) = store.select_cells("power_watts", tier="10s")
        assert sum(cell[4] for cell in series["cells"]) == 25


class TestRetention:
    def test_raw_prunes_but_rollups_keep_history(self, tmp_path):
        db = TSDB(
            str(tmp_path / "s"),
            retention_s={"raw": 30.0},
            seal_bytes=64,
        )
        for chunk in range(10):
            _fill(db, n=20, t0=chunk * 20.0, f=float)
            db.flush()
        document = db.document()["shards"]["power_watts"]
        assert document["appended"] == 200
        (raw,) = db.select("power_watts")
        # Sealed raw segments older than 30s are gone (the open block
        # and still-covered segments remain).
        assert raw["points"][0][0] > 0.0
        # The 10s tier kept the full run.
        (cells,) = db.select_cells("power_watts", tier="10s")
        assert sum(cell[4] for cell in cells["cells"]) == 200
        # Pruned files are actually unlinked.
        listing = os.listdir(os.path.join(db.root, "power_watts"))
        manifest = db.document()["shards"]["power_watts"]["segments"]
        assert len([f for f in listing if f.startswith("raw-")]) == manifest["raw"]


class TestQueryEngine:
    def test_matchers_exact_and_regex(self, store):
        for node in ("web-1", "web-2", "db-1"):
            store.append("reqs", {"node": node}, 1.0, 1.0)
        assert len(store.select("reqs")) == 3
        assert len(store.select("reqs", {"node": "web-1"})) == 1
        assert len(store.select("reqs", {"node": "=~web-.*"})) == 2
        assert store.select("reqs", {"node": "=~db"}) == []  # fullmatch

    def test_instant_query_at_and_latest(self, store):
        _fill(store, n=10, f=float)
        (latest,) = store.query("power_watts")
        assert (latest["t_s"], latest["value"]) == (9.0, 9.0)
        (at,) = store.query("power_watts", at_s=4.5)
        assert (at["t_s"], at["value"]) == (4.0, 4.0)
        assert store.query("power_watts", at_s=-1.0) == []

    def test_range_step_aggregations(self, store):
        _fill(store, n=100, f=float)
        for agg, want in (
            ("mean", 4.5),
            ("min", 0.0),
            ("max", 9.0),
            ("sum", 45.0),
            ("count", 10.0),
            ("last", 9.0),
        ):
            (series,) = store.query_range(
                "power_watts", start_s=0, end_s=99, step_s=10, agg=agg
            )
            assert series["points"][0] == (0.0, want), agg

    def test_last_bucket_includes_end(self, store):
        _fill(store, n=100, f=float)
        (series,) = store.query_range(
            "power_watts", start_s=0, end_s=99, step_s=10, agg="count"
        )
        assert sum(v for _, v in series["points"]) == 100

    def test_by_grouping_collapses_series(self, store):
        for node, base in (("a", 10.0), ("b", 30.0)):
            _fill(store, labels={"node": node, "dc": "x"}, n=10, f=lambda i, b=base: b)
        grouped = store.query_range(
            "power_watts", start_s=0, end_s=9, step_s=10, agg="mean", by=("dc",)
        )
        assert len(grouped) == 1
        assert grouped[0]["labels"] == {"dc": "x"}
        assert grouped[0]["points"][0][1] == pytest.approx(20.0)
        collapsed = store.query_range(
            "power_watts", start_s=0, end_s=9, step_s=10, agg="mean", by=()
        )
        assert collapsed[0]["labels"] == {}

    def test_tier_auto_falls_back_when_raw_pruned(self, tmp_path):
        db = TSDB(str(tmp_path / "s"), retention_s={"raw": 30.0}, seal_bytes=64)
        for chunk in range(10):
            _fill(db, n=20, t0=chunk * 20.0, f=float)
            db.flush()
        full = db.query_range("power_watts", start_s=0.0, end_s=199.0)
        assert full[0]["tier"] == "10s"
        recent = db.query_range("power_watts", start_s=190.0, end_s=199.0)
        assert recent[0]["tier"] == "raw"
        forced = db.query_range(
            "power_watts", start_s=0.0, end_s=199.0, tier="2m"
        )
        assert forced[0]["tier"] == "2m"

    def test_rate_reset_aware(self, store):
        appender = store.appender("reqs_total", None)
        for t, value in enumerate([0, 10, 20, 30, 5, 15, 25, 35, 45, 55]):
            appender.append(float(t), float(value))
        (series,) = store.rate("reqs_total", start_s=0, end_s=9)
        # Positive deltas only: 30 before the reset + 50 after, over 9s.
        assert series["rate"] == pytest.approx((30.0 + 50.0) / 9.0)

    def test_quantile_over_time(self, store):
        _fill(store, n=100, f=float)
        (series,) = store.quantile_over_time("power_watts", 0.5, start_s=0, end_s=99)
        assert series["value"] == pytest.approx(49.5)
        (p100,) = store.quantile_over_time("power_watts", 1.0, start_s=0, end_s=99)
        assert p100["value"] == 99.0

    def test_empty_end_defaults_to_newest(self, store):
        _fill(store, n=10, f=float)
        (series,) = store.query_range("power_watts", start_s=0.0)
        assert len(series["points"]) == 10

    def test_names_exclude_read_misses(self, store):
        store.append("real", None, 1.0, 1.0)
        store.query("ghost")
        store.query_range("phantom", start_s=0.0, end_s=1.0)
        assert store.names() == ["real"]
        store.flush()
        assert TSDB(store.root).names() == ["real"]

    def test_max_t_s_from_fresh_process(self, store):
        _fill(store, n=10, f=float)
        store.flush()
        assert TSDB(store.root).max_t_s() == pytest.approx(9.0)
        assert TSDB(str(store.root) + "-empty").max_t_s() is None


class TestRecordingRules:
    def test_rule_validation(self):
        with pytest.raises(ValueError):
            RecordingRule(record="", source="x", window_s=60.0)
        with pytest.raises(ValueError):
            RecordingRule(record="r", source="x", window_s=0.0)
        with pytest.raises(ValueError):
            RecordingRule(record="r", source="x", window_s=60.0, agg="bogus")
        rule = RecordingRule(record="r", source="x", window_s=60.0, agg="p95")
        assert RecordingRule.from_dict(rule.to_dict()) == rule

    def test_rules_evaluate_on_flush(self, store):
        for sub in ("cpu", "disk"):
            _fill(
                store,
                name="drift_error_pct",
                labels={"subsystem": sub},
                n=60,
                f=lambda i: 4.0,
            )
        engine = RuleEngine()
        store.attach_rules(engine)
        store.flush()
        results = store.select("drift_error_pct:mean_5m")
        assert {tuple(r["labels"].items()) for r in results} == {
            (("subsystem", "cpu"),),
            (("subsystem", "disk"),),
        }
        for series in results:
            assert series["points"][-1][1] == pytest.approx(4.0)

    def test_evaluation_idempotent_per_timestamp(self, store):
        _fill(store, name="drift_error_pct", labels={"subsystem": "cpu"}, n=60)
        engine = RuleEngine()
        assert engine.evaluate(store, 59.0) > 0
        assert engine.evaluate(store, 59.0) == 0  # same instant: no-op
        assert engine.evaluate(store, 58.0) == 0  # never goes back
        (series,) = store.select("drift_error_pct:mean_5m")
        assert len(series["points"]) == 1

    def test_custom_rate_and_quantile_rules(self, store):
        appender = store.appender("reqs_total", {"node": "a"})
        for t in range(61):
            appender.append(float(t), float(t * 2))
        engine = RuleEngine((
            RecordingRule(
                record="reqs:rate_1m", source="reqs_total", window_s=60.0,
                agg="rate",
            ),
            RecordingRule(
                record="reqs:p50_1m", source="reqs_total", window_s=60.0,
                agg="p50",
            ),
        ))
        assert engine.evaluate(store, 60.0) == 2
        (rate,) = store.select("reqs:rate_1m")
        assert rate["points"][0][1] == pytest.approx(2.0)
        assert store.select("reqs:p50_1m")

    def test_default_rules_document(self):
        doc = RuleEngine().document()
        assert len(doc["rules"]) == len(DEFAULT_RULES)
        assert any(
            rule["record"] == "drift_error_pct:mean_5m" for rule in doc["rules"]
        )


class _FakeDrift:
    def __init__(self, firing=()):
        self.slo_pct = 9.0
        self.firing = tuple(firing)


class _FakeSLO:
    def __init__(self, burning=()):
        self.fast_burning = tuple(burning)


class TestAlertManager:
    def test_dedup_key_stable(self):
        key = dedup_key("drift", "breach", {"b": "2", "a": "1"})
        assert key == "drift:breach{a=1,b=2}"
        alert = Alert("drift", "breach", {"a": "1", "b": "2"})
        assert alert.key == key

    def test_firing_resolved_transitions_persist(self, store):
        drift = _FakeDrift(firing=("cpu[3]", "memory"))
        manager = AlertManager(store=store)
        manager.attach_drift(drift)
        fired = manager.evaluate(10.0)
        assert {t["key"] for t in fired} == {
            "drift:drift_slo_breach{lane=3,subsystem=cpu}",
            "drift:drift_slo_breach{subsystem=memory}",
        }
        assert all(t["state"] == "firing" for t in fired)
        # Steady state: no new transitions while still firing.
        assert manager.evaluate(11.0) == []
        drift.firing = ()
        resolved = manager.evaluate(12.0)
        assert all(t["state"] == "resolved" for t in resolved)
        assert manager.firing == []
        series = store.select("alerts_firing")
        assert len(series) == 2
        for entry in series:
            assert [v for _, v in entry["points"]] == [1.0, 0.0]

    def test_three_sources_in_one_plane(self, store):
        from types import SimpleNamespace

        manager = AlertManager(store=store)
        manager.attach_drift(_FakeDrift(firing=("cpu",)))
        manager.attach_slo(_FakeSLO(burning=("freshness",)))
        manager.attach_dc(SimpleNamespace(
            policy="subsystem", cap_violations=3, drift_fallback_seconds=7,
        ))
        manager.evaluate(1.0)
        doc = manager.document()
        assert set(doc["groups"]) == {"drift", "slo", "dc"}
        assert len(doc["firing"]) == 4  # breach + burn + cap + fallback
        assert doc["groups"]["dc"][0]["detail"]["cap_violations"] == 3

    def test_silences_mute_but_keep_tracking(self):
        drift = _FakeDrift(firing=("cpu",))
        manager = AlertManager()
        manager.attach_drift(drift)
        silence_id = manager.silence({"subsystem": "cpu"}, until_s=100.0)
        assert silence_id == 1
        manager.evaluate(1.0)
        assert manager.firing == []  # silenced
        doc = manager.document()
        assert doc["groups"]["drift"][0]["silenced"] is True
        # Expiry un-mutes without re-firing.
        manager.evaluate(101.0)
        assert len(manager.firing) == 1

    def test_regex_silences(self):
        manager = AlertManager()
        manager.attach_drift(_FakeDrift(firing=("cpu[1]", "cpu[2]", "disk")))
        manager.silence({"lane": "=~[0-9]+"}, until_s=10.0)
        manager.evaluate(1.0)
        assert [a.labels["subsystem"] for a in manager.firing] == ["disk"]

    def test_history_bounded(self):
        manager = AlertManager(max_history=4)
        drift = _FakeDrift()
        manager.attach_drift(drift)
        for i in range(10):
            drift.firing = ("cpu",) if i % 2 == 0 else ()
            manager.evaluate(float(i))
        assert len(manager.history) == 4


class TestWindowSink:
    def test_windows_become_samples(self, store):
        from repro.obs.live import WindowedRegistry

        sink = WindowSink(store)
        windows = WindowedRegistry(window_s=5.0, max_windows=2, on_evict=sink)
        registry = obs.registry()
        obs.enable()
        for second in range(20):
            obs.inc("reqs_total", 3.0)
            obs.gauge("depth", float(second))
            obs.observe("latency_seconds", 0.01)
            windows.ingest(float(second), registry)
        drained = windows.drain()
        assert drained == 2
        assert sink.windows_persisted == 4
        (counters,) = store.select("reqs_total")
        # Counters persist per-window deltas, not cumulative values.
        assert [v for _, v in counters["points"]] == [15.0, 15.0, 15.0, 15.0]
        assert [t for t, _ in counters["points"]] == [0.0, 5.0, 10.0, 15.0]
        (gauges,) = store.select("depth")
        assert [v for _, v in gauges["points"]] == [4.0, 9.0, 14.0, 19.0]
        assert store.select("latency_seconds:mean")
        (count,) = store.select("latency_seconds:count")
        assert [v for _, v in count["points"]] == [5.0, 5.0, 5.0, 5.0]

    def test_sink_is_idempotent_per_window(self, store):
        from repro.obs.live import WindowedRegistry

        sink = WindowSink(store)
        windows = WindowedRegistry(window_s=5.0, on_evict=sink)
        registry = obs.registry()
        obs.enable()
        for second in range(12):
            obs.gauge("depth", float(second))
            windows.ingest(float(second), registry)
            # The eager per-tick pass re-offers every closed window.
            windows.sink_closed(float(second))
        windows.drain()
        (series,) = store.select("depth")
        # Two closed windows sunk eagerly + the final partial window at
        # drain — each exactly once despite the repeated offers.
        assert series["points"] == [(0.0, 4.0), (5.0, 9.0), (10.0, 11.0)]
        assert sink.windows_persisted == 3

    def test_sink_closed_keeps_windows_queryable(self, store):
        from repro.obs.live import WindowedRegistry

        sink = WindowSink(store)
        windows = WindowedRegistry(window_s=5.0, on_evict=sink)
        registry = obs.registry()
        obs.enable()
        for second in range(7):
            obs.gauge("depth", float(second))
            windows.ingest(float(second), registry)
        assert windows.sink_closed(7.0) == 1
        # Persisted but not evicted: live queries still see the window.
        assert len(windows) == 2
        assert windows.series("depth")[0] == (0.0, 4.0)
        (series,) = store.select("depth")
        assert series["points"] == [(0.0, 4.0)]


class TestHTTPRoutes:
    def test_query_routes(self, store):
        _fill(store, n=10, f=float)
        server = ObservabilityServer(store=store)
        status, _, body = server.payload("/query", "name=power_watts")
        assert status == 200
        doc = json.loads(body)
        assert doc["result"][0]["value"] == 9.0
        status, _, body = server.payload(
            "/query_range",
            "name=power_watts&start=0&end=9&step=5&agg=mean&label=node=a",
        )
        assert status == 200
        doc = json.loads(body)
        assert len(doc["result"][0]["points"]) == 2
        status, _, body = server.payload("/query", "")
        assert status == 400
        status, _, body = server.payload("/query", "name=x&label=bogus")
        assert status == 400

    def test_query_routes_without_store(self):
        server = ObservabilityServer()
        for path in ("/query", "/query_range"):
            status, _, body = server.payload(path, "name=x")
            assert status == 200
            assert json.loads(body) == {"store": None}

    def test_alerts_aggregated_payload(self, store):
        manager = AlertManager(store=store)
        manager.attach_drift(_FakeDrift(firing=("cpu",)))
        manager.evaluate(1.0)
        server = ObservabilityServer(alerts=manager)
        status, _, body = server.payload("/alerts", "")
        assert status == 200
        doc = json.loads(body)
        # Unattached surfaces are explicit nulls, never a 404.
        assert doc["drift"] is None and doc["slo"] is None and doc["dc"] is None
        assert doc["alerts"]["firing"] == [
            "drift:drift_slo_breach{subsystem=cpu}"
        ]

    def test_rules_route(self, store):
        engine = RuleEngine()
        store.attach_rules(engine)
        server = ObservabilityServer(store=store, rules=engine)
        status, _, body = server.payload("/rules", "")
        assert status == 200
        doc = json.loads(body)
        assert doc["rules"]["rules"]
        assert doc["store"]["root"] == store.root


class TestCLI:
    @pytest.fixture()
    def filled_store(self, tmp_path):
        root = str(tmp_path / "store")
        db = TSDB(root)
        _fill(db, name="drift_error_pct", labels={"subsystem": "cpu"}, n=60,
              f=lambda i: 3.0 + 0.01 * i)
        db.close()
        return root

    def test_query_instant(self, filled_store, capsys):
        assert main(["query", "drift_error_pct", "--store", filled_store]) == 0
        out = capsys.readouterr().out
        assert "drift_error_pct{subsystem=cpu}" in out

    def test_query_range_csv(self, filled_store, capsys):
        code = main([
            "query", "drift_error_pct", "--store", filled_store,
            "--range", "1m", "--step", "30", "--agg", "max", "--csv",
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0] == "metric,labels,tier,t_s,value"
        assert len(lines) > 1

    def test_query_label_matcher_and_miss(self, filled_store, capsys):
        assert main([
            "query", "drift_error_pct", "--store", filled_store,
            "--label", "subsystem=disk",
        ]) == 1
        assert main([
            "query", "drift_error_pct", "--store", filled_store,
            "--label", "subsystem=~c.*",
        ]) == 0

    def test_query_missing_store_dir(self, tmp_path, capsys):
        assert main([
            "query", "x", "--store", str(tmp_path / "nope"),
        ]) == 1

    def test_obs_store_summary(self, filled_store, capsys):
        assert main(["obs", "--store", filled_store, "--range", "5m"]) == 0
        out = capsys.readouterr().out
        assert "drift_error_pct{subsystem=cpu}" in out
        assert "metric shard(s)" in out

    def test_obs_store_empty(self, tmp_path, capsys):
        assert main(["obs", "--store", str(tmp_path / "missing")]) == 1


class TestServiceStore:
    def test_attach_store_persists_and_drains_on_stop(self, tmp_path):
        from repro.core.events import Subsystem
        from repro.core.models import ConstantModel
        from repro.core.suite import TrickleDownSuite
        from repro.serve.service import EstimationService

        obs.enable()
        suite = TrickleDownSuite(
            {Subsystem.CPU: ConstantModel(10.0)}, recipe_name="tsdb-test"
        )
        db = TSDB(str(tmp_path / "s"))
        service = EstimationService(suite, shards=1)
        service.attach_store(db, window_s=1.0)
        try:
            for second in range(8):
                service.tick(float(second))
        finally:
            service.stop()
        reopened = TSDB(db.root)
        assert reopened.names()  # windows drained + flushed on stop
        assert any(
            name.startswith("serve_") for name in reopened.names()
        )

    def test_datacenter_report_persist(self, tmp_path):
        from repro.dc.datacenter import DatacenterReport

        report = DatacenterReport(
            policy="subsystem", sensor="estimated", engine="fleet",
            cap_w=100.0, duration_s=3, n_nodes=2,
            power_w=[10.0, 20.0, 30.0],
            estimated_power_w=[11.0, 19.0, 31.0],
            offered_threads=[4, 5, 6],
            served_threads=[4, 5, 5],
            zone_power_w={"z0": [10.0, 20.0, 30.0]},
            zone_budget_w={"z0": [50.0, 50.0, 50.0]},
            zone_nodes_active={"z0": [2, 2, 2]},
        )
        db = TSDB(str(tmp_path / "s"))
        appended = report.persist(db, t0_s=100.0)
        assert appended == 4 * 3 + 3 * 3
        db.close()
        reopened = TSDB(db.root)
        (power,) = reopened.select("dc_power_watts")
        assert power["labels"] == {"policy": "subsystem", "sensor": "estimated"}
        assert [v for _, v in power["points"]] == [10.0, 20.0, 30.0]
        assert [t for t, _ in power["points"]] == [100.0, 101.0, 102.0]
        (zone,) = reopened.select("dc_zone_nodes_active")
        assert zone["labels"]["zone"] == "z0"
