"""Unit tests for feature construction (core/features.py)."""

import numpy as np
import pytest

from repro.core.events import Event
from repro.core.features import (
    FeatureSet,
    PAPER_FEATURES,
    PER_MCYCLE,
    active_fraction,
    get_feature,
    per_cycle,
    rate,
)
from repro.core.traces import CounterTrace


def trace_with(counts, durations=None):
    n = next(iter(counts.values())).shape[0]
    return CounterTrace(
        timestamps=np.arange(1.0, n + 1.0),
        durations=np.ones(n) if durations is None else durations,
        counts=counts,
    )


def test_per_cycle_sums_per_cpu_rates():
    trace = trace_with(
        {
            Event.CYCLES: np.array([[1.0e6, 2.0e6]]),
            Event.L3_MISSES: np.array([[100.0, 100.0]]),
        }
    )
    feature = per_cycle(Event.L3_MISSES)
    # 100/1e6 + 100/2e6
    assert feature(trace) == pytest.approx([1.5e-4])


def test_per_mcycle_scaling():
    trace = trace_with(
        {
            Event.CYCLES: np.array([[1.0e6]]),
            Event.BUS_TRANSACTIONS: np.array([[42.0]]),
        }
    )
    feature = per_cycle(Event.BUS_TRANSACTIONS, PER_MCYCLE)
    assert feature(trace) == pytest.approx([42.0])


def test_active_fraction_sums_cpus():
    trace = trace_with(
        {
            Event.CYCLES: np.array([[1.0e6, 1.0e6]]),
            Event.HALTED_CYCLES: np.array([[5.0e5, 0.0]]),
        }
    )
    assert active_fraction()(trace) == pytest.approx([1.5])


def test_rate_feature_uses_durations():
    trace = trace_with(
        {Event.INTERRUPTS: np.array([[10.0], [20.0]])},
        durations=np.array([1.0, 2.0]),
    )
    assert rate(Event.INTERRUPTS)(trace) == pytest.approx([10.0, 10.0])


def test_paper_features_are_trickle_down():
    for feature in PAPER_FEATURES.values():
        assert feature.is_trickle_down, feature.name


def test_get_feature_unknown_name():
    with pytest.raises(KeyError, match="available"):
        get_feature("nope")


class TestFeatureSet:
    def test_of_builds_by_name(self):
        features = FeatureSet.of("active_fraction", "fetched_uops_per_cycle")
        assert features.names == ("active_fraction", "fetched_uops_per_cycle")

    def test_duplicate_names_rejected(self):
        feature = get_feature("active_fraction")
        with pytest.raises(ValueError, match="duplicate"):
            FeatureSet([feature, feature])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FeatureSet([])

    def test_matrix_shape(self):
        trace = trace_with(
            {
                Event.CYCLES: np.full((3, 2), 1.0e6),
                Event.HALTED_CYCLES: np.zeros((3, 2)),
                Event.FETCHED_UOPS: np.full((3, 2), 1.0e6),
            }
        )
        features = FeatureSet.of("active_fraction", "fetched_uops_per_cycle")
        matrix = features.matrix(trace)
        assert matrix.shape == (3, 2)
        assert matrix[:, 0] == pytest.approx(2.0)  # both CPUs fully active
        assert matrix[:, 1] == pytest.approx(2.0)  # 1 uop/cycle each

    def test_trickle_down_flag(self):
        assert FeatureSet.of("interrupts_per_mcycle").is_trickle_down
