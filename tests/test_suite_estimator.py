"""Unit tests for TrickleDownSuite and SystemPowerEstimator."""

import numpy as np
import pytest

from repro.core.estimator import SystemPowerEstimator
from repro.core.events import Event, Subsystem
from repro.core.models import ConstantModel
from repro.core.suite import TrickleDownSuite


class TestTrickleDownSuite:
    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError):
            TrickleDownSuite({})

    def test_predict_total_sums_subsystems(self, paper_suite, idle_run):
        per_subsystem = paper_suite.predict_all(idle_run.counters)
        total = paper_suite.predict_total(idle_run.counters)
        assert np.allclose(
            total, np.sum(list(per_subsystem.values()), axis=0)
        )

    def test_missing_model_raises(self):
        suite = TrickleDownSuite({Subsystem.CHIPSET: ConstantModel(19.9)})
        with pytest.raises(KeyError, match="no model"):
            suite.model(Subsystem.DISK)

    def test_describe_lists_all_models(self, paper_suite):
        text = paper_suite.describe()
        for subsystem in Subsystem:
            assert subsystem.value in text

    def test_save_load_round_trip(self, paper_suite, idle_run, tmp_path):
        path = str(tmp_path / "suite.json")
        paper_suite.save(path)
        clone = TrickleDownSuite.load(path)
        assert np.allclose(
            clone.predict_total(idle_run.counters),
            paper_suite.predict_total(idle_run.counters),
        )
        assert clone.recipe_name == paper_suite.recipe_name

    def test_subsystems_in_paper_order(self, paper_suite):
        assert paper_suite.subsystems == (
            Subsystem.CPU,
            Subsystem.CHIPSET,
            Subsystem.MEMORY,
            Subsystem.IO,
            Subsystem.DISK,
        )


class TestSystemPowerEstimator:
    def sample_from_run(self, run, index=0):
        return {
            event: run.counters.per_cpu(event)[index]
            for event in run.counters.events
        }

    def test_streaming_matches_batch(self, paper_suite, idle_run):
        estimator = SystemPowerEstimator(paper_suite)
        counts = self.sample_from_run(idle_run, 3)
        duration = float(idle_run.counters.durations[3])
        estimate = estimator.estimate(counts, duration_s=duration)
        batch = paper_suite.predict_total(idle_run.counters)[3]
        assert estimate.total_w == pytest.approx(float(batch), rel=1e-9)

    def test_history_accumulates(self, paper_suite, idle_run):
        estimator = SystemPowerEstimator(paper_suite)
        for i in range(3):
            estimator.estimate(self.sample_from_run(idle_run, i))
        assert len(estimator.history) == 3
        # Default timestamps advance monotonically.
        times = [e.timestamp_s for e in estimator.history]
        assert times == sorted(times)

    def test_estimate_trace_matches_predict_all(self, paper_suite, idle_run):
        estimator = SystemPowerEstimator(paper_suite)
        estimates = estimator.estimate_trace(idle_run.counters)
        assert len(estimates) == idle_run.n_samples
        totals = paper_suite.predict_total(idle_run.counters)
        assert estimates[-1].total_w == pytest.approx(float(totals[-1]))

    def test_bad_duration_rejected(self, paper_suite):
        estimator = SystemPowerEstimator(paper_suite)
        with pytest.raises(ValueError):
            estimator.estimate({Event.CYCLES: np.ones(4)}, duration_s=0.0)

    def test_estimate_reports_all_subsystems(self, paper_suite, idle_run):
        estimator = SystemPowerEstimator(paper_suite)
        estimate = estimator.estimate(self.sample_from_run(idle_run))
        assert set(estimate.subsystem_w) == set(Subsystem)
        assert estimate.total_w > 100.0  # a whole server, not a chip
