"""Tests for the ensemble power-management extension (repro/cluster.py)."""

import numpy as np
import pytest

from repro.cluster import (
    BOOT_TIME_S,
    BOOT_POWER_W,
    Cluster,
    ClusterNode,
    NAP_EXIT_POWER_W,
    NAP_EXIT_TIME_S,
    NAP_POWER_W,
    PowerAwareManager,
    STANDBY_POWER_W,
    StaticManager,
    _NodeControl,
    diurnal_demand,
)
from repro.simulator.config import fast_config
from tests.conftest import TEST_SEED


@pytest.fixture()
def node():
    return ClusterNode(0, fast_config(), seed=TEST_SEED)


class TestClusterNode:
    def test_powered_idle_node_draws_server_idle_power(self, node):
        node.set_load(0)
        power = node.tick_second()
        assert 130.0 < power < 150.0  # the simulated server's idle

    def test_load_raises_power(self, node):
        node.set_load(0)
        idle = node.tick_second()
        node.set_load(node.capacity)
        for _ in range(5):
            loaded = node.tick_second()
        assert loaded > idle + 20.0

    def test_power_down_draws_standby(self, node):
        node.set_load(0)
        node.power_down()
        assert node.tick_second() == STANDBY_POWER_W
        assert not node.available

    def test_boot_sequence(self, node):
        node.set_load(0)
        node.power_down()
        node.power_up()
        assert node.booting and not node.available
        for _ in range(int(BOOT_TIME_S)):
            assert node.tick_second() == BOOT_POWER_W
        assert node.available

    def test_power_up_when_already_on_is_noop(self, node):
        node.set_load(0)
        node.power_up()
        assert not node.booting  # no spurious boot cycle

    def test_cannot_power_down_loaded_node(self, node):
        node.set_load(2)
        with pytest.raises(ValueError, match="still serves"):
            node.power_down()

    def test_cannot_load_unavailable_node(self, node):
        node.set_load(0)
        node.power_down()
        with pytest.raises(ValueError, match="cannot serve"):
            node.set_load(1)

    def test_load_bounds(self, node):
        with pytest.raises(ValueError):
            node.set_load(-1)
        with pytest.raises(ValueError):
            node.set_load(node.capacity + 1)

    def test_nap_draws_nap_power_and_wakes_quickly(self, node):
        node.set_load(0)
        node.nap()
        assert node.napping and not node.available
        assert node.tick_second() == NAP_POWER_W
        node.wake()
        assert node.waking and not node.available
        for _ in range(int(NAP_EXIT_TIME_S)):
            assert node.tick_second() == NAP_EXIT_POWER_W
        assert node.available

    def test_power_up_wakes_a_napping_node(self, node):
        node.set_load(0)
        node.nap()
        node.power_up()
        assert not node.napping and node.waking

    def test_cannot_nap_loaded_or_unavailable_node(self, node):
        node.set_load(2)
        with pytest.raises(ValueError, match="still serves"):
            node.nap()
        node.set_load(0)
        node.power_down()
        with pytest.raises(ValueError, match="cannot nap"):
            node.nap()

    def test_power_down_from_nap(self, node):
        node.set_load(0)
        node.nap()
        node.power_down()
        assert not node.powered and not node.napping
        assert node.tick_second() == STANDBY_POWER_W

    def test_set_pstate_validates_and_applies(self, node):
        node.set_pstate(2)
        assert node.pstate == 2
        node.set_load(0)
        node.tick_second()
        assert node._server.packages[0].pstate_index == 2
        with pytest.raises(ValueError, match="out of range"):
            node.set_pstate(99)


class TestManagers:
    def run_short(self, manager, demand=None):
        cluster = Cluster(n_nodes=3, seed=TEST_SEED)
        demand = demand or diurnal_demand(
            90, peak_threads=14, trough_threads=2, period_s=90.0, seed=5
        )
        return cluster.run(demand, manager), demand

    def test_static_serves_all_demand(self):
        trace, demand = self.run_short(StaticManager())
        assert trace.dropped_thread_seconds == 0
        assert all(on == 3 for on in trace.nodes_on)

    def test_power_aware_saves_energy(self):
        static, demand = self.run_short(StaticManager())
        aware, _ = self.run_short(PowerAwareManager(headroom_threads=6), demand)
        assert aware.energy_j < static.energy_j * 0.95
        assert min(aware.nodes_on) < 3  # it actually powered nodes down

    def test_power_aware_serves_most_demand(self):
        aware, demand = self.run_short(PowerAwareManager(headroom_threads=8))
        total_demand = sum(demand)
        assert aware.dropped_thread_seconds < total_demand * 0.05

    def test_more_headroom_fewer_drops(self):
        tight, demand = self.run_short(PowerAwareManager(headroom_threads=0))
        roomy, _ = self.run_short(PowerAwareManager(headroom_threads=10), demand)
        assert roomy.dropped_thread_seconds <= tight.dropped_thread_seconds
        assert roomy.energy_j >= tight.energy_j

    def test_invalid_headroom(self):
        with pytest.raises(ValueError):
            PowerAwareManager(headroom_threads=-1)

    def test_demand_blip_cancels_boot_immediately(self):
        """Regression: a booting surplus node must be killed, not left
        burning BOOT_POWER_W for the rest of its boot."""
        cluster = Cluster(n_nodes=2, seed=TEST_SEED, boot_time_s=10.0)
        manager = PowerAwareManager(headroom_threads=0)
        # 1-thread demand, a one-second blip to full capacity, then
        # back down: node 1 starts booting on the blip and must be
        # powered down on the very next placement.
        demand = [1, 1, 16, 1, 1, 1]
        trace = cluster.run(demand, manager)
        boost_seconds = sum(
            1 for w in trace.node_power_w[1] if w == BOOT_POWER_W
        )
        assert boost_seconds <= 1  # pre-fix: the full 10 s boot
        assert trace.node_power_w[1][-1] == STANDBY_POWER_W
        assert not cluster.nodes[1].powered

    def test_mixed_capacity_sizing(self, monkeypatch):
        """Regression: node count must come from actual capacities,
        not ``nodes[0].capacity`` assumed homogeneous."""
        cluster = _FakeCluster([2, 8, 8])
        calls: "dict[int, list[int]]" = {}
        orig = _FakeNode.set_load

        def spy(self, n_threads):
            calls.setdefault(self.node_id, []).append(n_threads)
            orig(self, n_threads)

        monkeypatch.setattr(_FakeNode, "set_load", spy)
        PowerAwareManager(headroom_threads=0).place(cluster, 9)
        # 2 + 8 >= 9: two nodes suffice; pre-fix ceil(9/2)=5 kept all 3.
        assert [n.powered for n in cluster.nodes] == [True, True, False]
        assert [n.assigned_threads for n in cluster.nodes] == [2, 7, 0]
        # Every load change went through the set_load state machine.
        for node in cluster.nodes:
            assert calls[node.node_id][-1] == node.assigned_threads

    def test_static_manager_routes_loads_through_set_load(self, monkeypatch):
        cluster = _FakeCluster([4, 4])
        calls: "dict[int, list[int]]" = {}
        orig = _FakeNode.set_load

        def spy(self, n_threads):
            calls.setdefault(self.node_id, []).append(n_threads)
            orig(self, n_threads)

        monkeypatch.setattr(_FakeNode, "set_load", spy)
        StaticManager().place(cluster, 5)
        assert [n.assigned_threads for n in cluster.nodes] == [3, 2]
        for node in cluster.nodes:
            assert calls[node.node_id][-1] == node.assigned_threads

    def test_spills_to_surplus_while_prefix_boots(self):
        cluster = _FakeCluster([8, 8])
        manager = PowerAwareManager(headroom_threads=0)
        cluster.nodes[0].power_down()
        cluster.nodes[0].power_up()  # booting for 5 s
        manager.place(cluster, 6)
        # Node 0 cannot serve yet; the surplus node keeps the demand
        # instead of dropping it while node 0 boots.
        assert cluster.nodes[0].assigned_threads == 0
        assert cluster.nodes[1].assigned_threads == 6
        assert cluster.nodes[1].powered


class _FakeNode(_NodeControl):
    """Capacity-parameterized control node (no simulated server)."""

    def __init__(self, node_id: int, capacity: int, boot_time_s: float = 0.0):
        self.node_id = node_id
        self.capacity = capacity
        self.boot_time_s = boot_time_s
        self.config = fast_config()
        self._init_control()


class _FakeCluster:
    def __init__(self, capacities):
        self.nodes = [
            _FakeNode(i, c, boot_time_s=5.0 if i == 0 else 0.0)
            for i, c in enumerate(capacities)
        ]

    @property
    def capacity(self):
        return sum(n.capacity for n in self.nodes)


class TestDemandGenerator:
    def test_range_and_length(self):
        demand = diurnal_demand(120, peak_threads=16, trough_threads=4)
        assert len(demand) == 120
        assert min(demand) >= 0
        assert max(demand) <= 16 + 8  # noise can exceed peak a little

    def test_deterministic(self):
        a = diurnal_demand(60, 10, 2, seed=9)
        b = diurnal_demand(60, 10, 2, seed=9)
        assert a == b

    def test_shape_has_trough_and_peak(self):
        demand = diurnal_demand(
            200, peak_threads=20, trough_threads=2, period_s=200.0, noise=0.0
        )
        assert demand[0] <= 4
        assert max(demand[80:120]) >= 18

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            diurnal_demand(10, peak_threads=2, trough_threads=5)

    def test_trough_equals_peak_is_flat(self):
        demand = diurnal_demand(30, 10, 10, noise=0.0)
        assert demand == [10] * 30

    def test_zero_noise_matches_closed_form(self):
        period = 60.0
        demand = diurnal_demand(
            60, 12, 4, period_s=period, noise=0.0, seed=1
        )
        t = np.arange(60)
        base = 8.0 - 4.0 * np.cos(2.0 * np.pi * t / period)
        assert demand == [int(round(v)) for v in base]
        assert demand == diurnal_demand(
            60, 12, 4, period_s=period, noise=0.0, seed=2
        )  # seed is irrelevant without noise

    def test_noise_clipped_at_zero(self):
        demand = diurnal_demand(300, 2, 0, noise=5.0, seed=11)
        assert min(demand) == 0  # huge noise would go negative unclipped
        assert all(v >= 0 for v in demand)


class TestCluster:
    def test_capacity(self):
        cluster = Cluster(n_nodes=2, seed=TEST_SEED)
        assert cluster.capacity == 16

    def test_offered_demand_recorded_above_capacity(self):
        """Regression: the trace keeps *offered* demand; only placement
        is clamped, so flash-crowd drops are counted, not hidden."""
        cluster = Cluster(n_nodes=1, seed=TEST_SEED)
        trace = cluster.run([99, 99], StaticManager())
        assert trace.demand == [99, 99]
        assert max(trace.served) <= cluster.capacity
        assert trace.dropped_thread_seconds == 2 * (99 - cluster.capacity)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Cluster(n_nodes=0)


class _ScriptedManager:
    """Deterministic DVFS + nap + load schedule for engine equality."""

    def __init__(self):
        self.t = 0

    def place(self, cluster, demand):
        t = self.t
        self.t += 1
        n0, n1, n2 = cluster.nodes
        for node in cluster.nodes:
            node.power_up()
        if t == 3:
            n2.set_load(0)
            n2.nap()
        if t == 6:
            n2.wake()
        for node in cluster.nodes:
            if node.available:
                node.set_load(0)
        n0.set_pstate(min(t // 2, 3))
        n1.set_pstate(3 - min(t // 3, 3))
        loads = [5, 3, 2]
        remaining = demand
        for node, want in zip(cluster.nodes, loads):
            if node.available:
                take = min(want, remaining)
                node.set_load(take)
                remaining -= take


class TestEngineEquality:
    def test_fleet_matches_scalar_under_dvfs_and_nap(self):
        """Per-lane DVFS shifts, naps and freezes keep the fleet engine
        bit-identical to per-node scalar servers."""
        demand = [8, 9, 10, 7, 6, 8, 9, 10, 10, 9]
        traces = {}
        for engine in ("fleet", "scalar"):
            cluster = Cluster(n_nodes=3, seed=TEST_SEED, engine=engine)
            traces[engine] = cluster.run(demand, _ScriptedManager())
        assert traces["fleet"].power_w == traces["scalar"].power_w
        assert traces["fleet"].node_power_w == traces["scalar"].node_power_w
        assert traces["fleet"].served == traces["scalar"].served
