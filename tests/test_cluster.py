"""Tests for the ensemble power-management extension (repro/cluster.py)."""

import pytest

from repro.cluster import (
    BOOT_TIME_S,
    BOOT_POWER_W,
    Cluster,
    ClusterNode,
    PowerAwareManager,
    STANDBY_POWER_W,
    StaticManager,
    diurnal_demand,
)
from repro.simulator.config import fast_config
from tests.conftest import TEST_SEED


@pytest.fixture()
def node():
    return ClusterNode(0, fast_config(), seed=TEST_SEED)


class TestClusterNode:
    def test_powered_idle_node_draws_server_idle_power(self, node):
        node.set_load(0)
        power = node.tick_second()
        assert 130.0 < power < 150.0  # the simulated server's idle

    def test_load_raises_power(self, node):
        node.set_load(0)
        idle = node.tick_second()
        node.set_load(node.capacity)
        for _ in range(5):
            loaded = node.tick_second()
        assert loaded > idle + 20.0

    def test_power_down_draws_standby(self, node):
        node.set_load(0)
        node.power_down()
        assert node.tick_second() == STANDBY_POWER_W
        assert not node.available

    def test_boot_sequence(self, node):
        node.set_load(0)
        node.power_down()
        node.power_up()
        assert node.booting and not node.available
        for _ in range(int(BOOT_TIME_S)):
            assert node.tick_second() == BOOT_POWER_W
        assert node.available

    def test_power_up_when_already_on_is_noop(self, node):
        node.set_load(0)
        node.power_up()
        assert not node.booting  # no spurious boot cycle

    def test_cannot_power_down_loaded_node(self, node):
        node.set_load(2)
        with pytest.raises(ValueError, match="still serves"):
            node.power_down()

    def test_cannot_load_unavailable_node(self, node):
        node.set_load(0)
        node.power_down()
        with pytest.raises(ValueError, match="cannot serve"):
            node.set_load(1)

    def test_load_bounds(self, node):
        with pytest.raises(ValueError):
            node.set_load(-1)
        with pytest.raises(ValueError):
            node.set_load(node.capacity + 1)


class TestManagers:
    def run_short(self, manager, demand=None):
        cluster = Cluster(n_nodes=3, seed=TEST_SEED)
        demand = demand or diurnal_demand(
            90, peak_threads=14, trough_threads=2, period_s=90.0, seed=5
        )
        return cluster.run(demand, manager), demand

    def test_static_serves_all_demand(self):
        trace, demand = self.run_short(StaticManager())
        assert trace.dropped_thread_seconds == 0
        assert all(on == 3 for on in trace.nodes_on)

    def test_power_aware_saves_energy(self):
        static, demand = self.run_short(StaticManager())
        aware, _ = self.run_short(PowerAwareManager(headroom_threads=6), demand)
        assert aware.energy_j < static.energy_j * 0.95
        assert min(aware.nodes_on) < 3  # it actually powered nodes down

    def test_power_aware_serves_most_demand(self):
        aware, demand = self.run_short(PowerAwareManager(headroom_threads=8))
        total_demand = sum(demand)
        assert aware.dropped_thread_seconds < total_demand * 0.05

    def test_more_headroom_fewer_drops(self):
        tight, demand = self.run_short(PowerAwareManager(headroom_threads=0))
        roomy, _ = self.run_short(PowerAwareManager(headroom_threads=10), demand)
        assert roomy.dropped_thread_seconds <= tight.dropped_thread_seconds
        assert roomy.energy_j >= tight.energy_j

    def test_invalid_headroom(self):
        with pytest.raises(ValueError):
            PowerAwareManager(headroom_threads=-1)


class TestDemandGenerator:
    def test_range_and_length(self):
        demand = diurnal_demand(120, peak_threads=16, trough_threads=4)
        assert len(demand) == 120
        assert min(demand) >= 0
        assert max(demand) <= 16 + 8  # noise can exceed peak a little

    def test_deterministic(self):
        a = diurnal_demand(60, 10, 2, seed=9)
        b = diurnal_demand(60, 10, 2, seed=9)
        assert a == b

    def test_shape_has_trough_and_peak(self):
        demand = diurnal_demand(
            200, peak_threads=20, trough_threads=2, period_s=200.0, noise=0.0
        )
        assert demand[0] <= 4
        assert max(demand[80:120]) >= 18

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            diurnal_demand(10, peak_threads=2, trough_threads=5)


class TestCluster:
    def test_capacity(self):
        cluster = Cluster(n_nodes=2, seed=TEST_SEED)
        assert cluster.capacity == 16

    def test_demand_clamped_to_capacity(self):
        cluster = Cluster(n_nodes=1, seed=TEST_SEED)
        trace = cluster.run([99, 99], StaticManager())
        assert max(trace.demand) <= cluster.capacity

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Cluster(n_nodes=0)
