"""Unit tests for Equation 6 and the validation report."""

import numpy as np
import pytest

from repro.core.events import Subsystem
from repro.core.validation import (
    ValidationReport,
    average_error,
    dc_adjusted_error,
    validate_suite,
)


class TestAverageError:
    def test_equation_six_definition(self):
        measured = np.array([100.0, 100.0])
        modeled = np.array([110.0, 90.0])
        assert average_error(modeled, measured) == pytest.approx(10.0)

    def test_perfect_model_is_zero(self):
        series = np.array([1.0, 2.0, 3.0])
        assert average_error(series, series) == 0.0

    def test_sign_symmetric(self):
        measured = np.full(4, 50.0)
        over = average_error(measured * 1.1, measured)
        under = average_error(measured * 0.9, measured)
        assert over == pytest.approx(under)

    def test_rejects_zero_measured(self):
        with pytest.raises(ValueError, match="positive"):
            average_error(np.ones(2), np.array([1.0, 0.0]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            average_error(np.array([]), np.array([]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            average_error(np.ones(3), np.ones(4))


class TestDcAdjustedError:
    def test_dc_adjustment_amplifies_error(self):
        # 1 W of modeling error on a 33 W signal with a 32 W DC offset:
        # raw error ~3 %, DC-adjusted error 100 %.
        measured = np.full(5, 33.0)
        modeled = np.full(5, 34.0)
        raw = average_error(modeled, measured)
        adjusted = dc_adjusted_error(modeled, measured, 32.0)
        assert raw == pytest.approx(100.0 / 33.0)
        assert adjusted == pytest.approx(100.0)

    def test_samples_at_dc_are_excluded(self):
        measured = np.array([21.6, 22.6])
        modeled = np.array([21.6, 22.1])
        adjusted = dc_adjusted_error(modeled, measured, 21.6)
        assert adjusted == pytest.approx(50.0)

    def test_all_samples_at_dc_rejected(self):
        measured = np.full(3, 21.6)
        with pytest.raises(ValueError, match="dynamic"):
            dc_adjusted_error(measured, measured, 21.6)


class TestValidationReport:
    def make_report(self):
        return ValidationReport(
            errors={
                "gcc": {Subsystem.CPU: 4.0, Subsystem.DISK: 0.2},
                "mcf": {Subsystem.CPU: 12.0, Subsystem.DISK: 0.1},
            }
        )

    def test_subsystem_average(self):
        report = self.make_report()
        assert report.subsystem_average(Subsystem.CPU) == pytest.approx(8.0)

    def test_worst_case(self):
        report = self.make_report()
        workload, error = report.worst_case(Subsystem.CPU)
        assert workload == "mcf"
        assert error == 12.0

    def test_overall_average(self):
        report = self.make_report()
        assert report.overall_average() == pytest.approx((4 + 0.2 + 12 + 0.1) / 4)

    def test_subset_average(self):
        report = self.make_report()
        assert report.subsystem_average(
            Subsystem.CPU, ("gcc",)
        ) == pytest.approx(4.0)


class TestValidateSuite:
    def test_validates_every_run_and_subsystem(self, paper_suite, training_runs):
        report = validate_suite(paper_suite, training_runs)
        assert set(report.workloads) == set(training_runs)
        for workload in report.workloads:
            assert set(report.errors[workload]) == set(Subsystem)
            for error in report.errors[workload].values():
                assert 0.0 <= error < 100.0

    def test_accepts_list_of_runs(self, paper_suite, idle_run):
        report = validate_suite(paper_suite, [idle_run])
        assert report.workloads == ("idle",)

    def test_empty_runs_rejected(self, paper_suite):
        with pytest.raises(ValueError):
            validate_suite(paper_suite, [])
