"""Unit tests for counters (perfctr, sampler) and measurement
(sensors, DAQ, synchronisation)."""

import numpy as np
import pytest

from repro.core.events import Event, SUBSYSTEMS, Subsystem
from repro.core.traces import TraceError
from repro.counters.perfctr import CounterBank
from repro.counters.sampler import CounterSampler
from repro.measurement.daq import DataAcquisition
from repro.measurement.sensors import PowerSensors
from repro.measurement.sync import align_windows
from repro.simulator.config import MeasurementConfig
from tests.test_traces import make_counter_trace, make_power_trace


class TestCounterBank:
    def test_accumulate_and_clear(self):
        bank = CounterBank((Event.CYCLES, Event.INTERRUPTS), 2)
        bank.add(Event.CYCLES, 0, 100.0)
        bank.add(Event.CYCLES, 0, 50.0)
        bank.add(Event.CYCLES, 1, 25.0)
        counts = bank.read_and_clear()
        assert counts[Event.CYCLES].tolist() == [150.0, 25.0]
        assert bank.read_and_clear()[Event.CYCLES].tolist() == [0.0, 0.0]

    def test_add_all_cpus(self):
        bank = CounterBank((Event.CYCLES,), 3)
        bank.add_all_cpus(Event.CYCLES, [1.0, 2.0, 3.0])
        assert bank.peek(Event.CYCLES).tolist() == [1.0, 2.0, 3.0]

    def test_negative_counts_rejected(self):
        bank = CounterBank((Event.CYCLES,), 1)
        with pytest.raises(ValueError):
            bank.add(Event.CYCLES, 0, -1.0)
        with pytest.raises(ValueError):
            bank.add_all_cpus(Event.CYCLES, [-1.0])

    def test_unknown_event_raises(self):
        bank = CounterBank((Event.CYCLES,), 1)
        with pytest.raises(KeyError):
            bank.add(Event.INTERRUPTS, 0, 1.0)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CounterBank((), 1)
        with pytest.raises(ValueError):
            CounterBank((Event.CYCLES,), 0)


class TestCounterSampler:
    def make(self, jitter=0.0):
        config = MeasurementConfig(sample_jitter_s=jitter)
        bank = CounterBank((Event.CYCLES,), 2)
        return bank, CounterSampler(bank, config, np.random.default_rng(1))

    def test_samples_once_per_period(self):
        bank, sampler = self.make()
        dt = 0.01
        pulses = []
        for i in range(1, 301):
            bank.add_all_cpus(Event.CYCLES, [1.0e4, 1.0e4])
            pulse = sampler.maybe_sample(i * dt)
            if pulse is not None:
                pulses.append(pulse)
        assert len(pulses) == 3
        trace = sampler.finish()
        assert trace.n_samples == 3
        # Counts are conserved: 100 ticks of 1e4 cycles per window.
        assert np.allclose(trace.total(Event.CYCLES), 2.0e6)

    def test_jitter_varies_window_durations(self):
        bank, sampler = self.make(jitter=0.02)
        dt = 0.01
        for i in range(1, 1001):
            bank.add_all_cpus(Event.CYCLES, [1.0e4, 1.0e4])
            sampler.maybe_sample(i * dt)
        trace = sampler.finish()
        assert trace.durations.std() > 0.0
        assert abs(trace.durations.mean() - 1.0) < 0.05

    def test_finish_without_samples_raises(self):
        _, sampler = self.make()
        with pytest.raises(ValueError, match="no counter samples"):
            sampler.finish()


class TestPowerSensors:
    def make(self, **kwargs):
        return PowerSensors(
            SUBSYSTEMS, MeasurementConfig(**kwargs), np.random.default_rng(2)
        )

    def test_gain_is_fixed_per_run(self):
        sensors = self.make()
        gain = sensors.gain(Subsystem.CPU)
        assert gain == sensors.gain(Subsystem.CPU)
        assert abs(gain - 1.0) < 0.02

    def test_observation_close_to_truth(self):
        sensors = self.make()
        reading = sensors.observe(Subsystem.CPU, 100.0, 5.0)
        assert reading == pytest.approx(100.0, rel=0.02)

    def test_zero_noise_config_is_exact(self):
        sensors = self.make(gain_error_rel=0.0, drift_rel=0.0)
        assert sensors.observe(Subsystem.DISK, 21.6, 9.0) == pytest.approx(21.6)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            self.make().observe(Subsystem.CPU, -1.0, 0.0)


class TestDataAcquisition:
    def make_daq(self):
        config = MeasurementConfig(gain_error_rel=0.0, drift_rel=0.0)
        sensors = PowerSensors(SUBSYSTEMS, config, np.random.default_rng(3))
        return DataAcquisition(sensors, config, np.random.default_rng(4))

    def test_window_average_matches_input(self):
        daq = self.make_daq()
        power = {s: 10.0 * (i + 1) for i, s in enumerate(SUBSYSTEMS)}
        for i in range(1, 101):
            daq.record_tick(power, i * 0.01, 0.01)
        daq.close_window(1.0)
        trace = daq.finish()
        for i, subsystem in enumerate(SUBSYSTEMS):
            assert trace.power(subsystem)[0] == pytest.approx(
                10.0 * (i + 1), rel=0.02
            )

    def test_nonadvancing_pulse_rejected(self):
        daq = self.make_daq()
        daq.record_tick({s: 1.0 for s in SUBSYSTEMS}, 0.01, 0.01)
        daq.close_window(0.01)
        with pytest.raises(ValueError):
            daq.close_window(0.01)

    def test_finish_without_windows_raises(self):
        with pytest.raises(ValueError, match="sync"):
            self.make_daq().finish()


class TestAlignWindows:
    def test_identical_timestamps_align_fully(self):
        counters = make_counter_trace(n=5)
        power = make_power_trace(n=5)
        ac, ap = align_windows(counters, power)
        assert ac.n_samples == ap.n_samples == 5

    def test_offset_streams_trimmed(self):
        counters = make_counter_trace(n=5)
        power = make_power_trace(n=6)
        power.timestamps = np.array([0.5, 1.0, 2.0, 3.0, 4.0, 5.0])
        ac, ap = align_windows(counters, power)
        assert ac.n_samples == 5
        assert np.allclose(ac.timestamps, ap.timestamps)

    def test_misaligned_streams_raise(self):
        counters = make_counter_trace(n=4)
        power = make_power_trace(n=4)
        power.timestamps = power.timestamps + 0.4  # beyond tolerance
        with pytest.raises(TraceError, match="synchronisation failed"):
            align_windows(counters, power, tolerance_s=0.05)

    def test_bad_tolerance_rejected(self):
        counters = make_counter_trace(n=3)
        power = make_power_trace(n=3)
        with pytest.raises(ValueError):
            align_windows(counters, power, tolerance_s=0.0)
