"""Unit tests for disk, DMA engine, I/O and chipset subsystems."""

import numpy as np
import pytest

from repro.simulator.chipset import ChipsetSubsystem
from repro.simulator.config import ChipsetConfig, DiskConfig, IoConfig
from repro.simulator.disk import DiskSubsystem
from repro.simulator.dma import DmaEngine
from repro.simulator.io_subsys import IoSubsystem


class TestDiskSubsystem:
    def test_idle_disks_still_rotate(self):
        disk = DiskSubsystem(DiskConfig())
        tick = disk.tick(0.01)
        config = DiskConfig()
        assert tick.power_w == pytest.approx(
            config.rotation_power_w * config.num_disks
        )
        assert tick.served_bytes == 0.0

    def test_sequential_throughput_near_media_rate(self):
        config = DiskConfig()
        disk = DiskSubsystem(config)
        disk.submit(0.0, 10.0e6, write_sequential=True)
        tick = disk.tick(0.1)
        expected = config.transfer_rate_bps * config.num_disks * 0.1
        assert tick.served_write_bytes == pytest.approx(
            min(10.0e6, expected), rel=0.1
        )

    def test_random_reads_are_seek_dominated(self):
        disk = DiskSubsystem(DiskConfig())
        disk.submit(5.0e6, 0.0, read_sequential=False)
        tick = disk.tick(0.1)
        assert tick.seek_time_s > tick.transfer_time_s

    def test_sequential_writes_are_transfer_dominated(self):
        disk = DiskSubsystem(DiskConfig())
        disk.submit(0.0, 5.0e6, write_sequential=True)
        tick = disk.tick(0.1)
        assert tick.transfer_time_s > tick.seek_time_s

    def test_activity_raises_power_modestly(self):
        """The paper's disks gain at most ~20 % over rotation."""
        config = DiskConfig()
        disk = DiskSubsystem(config)
        disk.submit(50.0e6, 50.0e6)
        tick = disk.tick(0.1)
        rotation = config.rotation_power_w * config.num_disks
        assert rotation < tick.power_w < rotation * 1.2

    def test_queue_carries_over(self):
        disk = DiskSubsystem(DiskConfig())
        disk.submit(0.0, 100.0e6)
        disk.tick(0.01)
        assert disk.queued_bytes > 0.0
        total = 0.0
        for _ in range(200):
            total += disk.tick(0.01).served_bytes
        assert total == pytest.approx(100.0e6, rel=0.01)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            DiskSubsystem(DiskConfig()).submit(-1.0, 0.0)


class TestDmaEngine:
    def test_byte_conservation(self):
        engine = DmaEngine(IoConfig())
        tick = engine.tick(64.0e3, 128.0e3)
        assert tick.io_bytes == pytest.approx(192.0e3)
        assert tick.dram_writes == pytest.approx(64.0e3 / 64.0)
        assert tick.dram_reads == pytest.approx(128.0e3 / 64.0)
        assert tick.bus_snoops == pytest.approx(192.0e3 / 64.0)

    def test_interrupt_rate_matches_buffer_size(self):
        config = IoConfig()
        engine = DmaEngine(config)
        total = 0
        for _ in range(100):
            total += engine.tick(config.bytes_per_interrupt / 10.0, 0.0).interrupts
        assert total == pytest.approx(10, abs=1)

    def test_fractional_interrupts_accumulate(self):
        config = IoConfig()
        engine = DmaEngine(config)
        tick = engine.tick(config.bytes_per_interrupt * 0.4, 0.0)
        assert tick.interrupts == 0
        tick = engine.tick(config.bytes_per_interrupt * 0.7, 0.0)
        assert tick.interrupts == 1

    def test_write_combining_reduces_transactions(self):
        config = IoConfig()
        engine = DmaEngine(config)
        tick = engine.tick(1.0e6, 0.0)
        naive = 1.0e6 / 512.0
        assert tick.io_transactions < naive

    def test_background_traffic_splits_directions(self):
        engine = DmaEngine(IoConfig())
        tick = engine.tick(0.0, 0.0, background_bytes=128.0)
        assert tick.dram_reads == pytest.approx(1.0)
        assert tick.dram_writes == pytest.approx(1.0)

    def test_negative_transfer_rejected(self):
        with pytest.raises(ValueError):
            DmaEngine(IoConfig()).tick(-1.0, 0.0)


class TestIoSubsystem:
    def test_idle_power_is_static(self):
        io = IoSubsystem(IoConfig())
        tick = io.tick(0.0, 0.0, 0.0, 0.01)
        assert tick.power_w == pytest.approx(IoConfig().static_power_w)

    def test_switching_power_scales_with_bytes(self):
        io = IoSubsystem(IoConfig())
        slow = io.tick(1.0e5, 10.0, 0.0, 0.01)
        fast = io.tick(1.0e6, 100.0, 0.0, 0.01)
        assert fast.power_w > slow.power_w

    def test_dc_term_dominates(self):
        """DiskLoad raises I/O power only ~7 % over idle in the paper."""
        config = IoConfig()
        io = IoSubsystem(config)
        # ~90 MB/s of disk DMA in one 10 ms tick.
        tick = io.tick(0.9e6, 700.0, 30.0, 0.01)
        assert tick.power_w < config.static_power_w * 1.2

    def test_negative_activity_rejected(self):
        with pytest.raises(ValueError):
            IoSubsystem(IoConfig()).tick(-1.0, 0.0, 0.0, 0.01)


class TestChipsetSubsystem:
    def make(self, seed=3):
        return ChipsetSubsystem(ChipsetConfig(), np.random.default_rng(seed))

    def test_idle_reads_nominal(self):
        chipset = self.make()
        values = [chipset.tick(0.0, 0.0, 0.0, 0.01) for _ in range(200)]
        assert np.mean(values) == pytest.approx(
            ChipsetConfig().nominal_power_w, abs=0.3
        )

    def test_offset_gated_by_activity(self):
        chipset = self.make()
        idle = np.mean([chipset.tick(0.0, 0.0, 0.0, 0.01) for _ in range(100)])
        loaded = np.mean([chipset.tick(0.5, 0.0, 1.0, 0.01) for _ in range(100)])
        # Loaded derivation includes the per-run offset (plus a small
        # utilisation term); it differs from the idle reading.
        assert abs(loaded - idle) > 0.05

    def test_within_run_std_is_small(self):
        chipset = self.make()
        values = [chipset.tick(0.8, 1.0e5, 1.0, 0.01) for _ in range(500)]
        assert np.std(values) < 0.4  # paper Table 2: <= 0.33 W

    def test_offsets_differ_across_runs(self):
        offsets = {
            ChipsetSubsystem(
                ChipsetConfig(), np.random.default_rng(seed)
            ).derivation_offset_mean_w
            for seed in range(8)
        }
        assert len(offsets) == 8

    def test_invalid_inputs_rejected(self):
        chipset = self.make()
        with pytest.raises(ValueError):
            chipset.tick(1.5, 0.0, 0.0, 0.01)
        with pytest.raises(ValueError):
            chipset.tick(0.5, 0.0, 2.0, 0.01)
