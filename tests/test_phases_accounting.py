"""Tests for the extensions: phase detection and per-CPU accounting."""

import numpy as np
import pytest

from repro.core.accounting import PowerAccountant
from repro.core.events import Subsystem
from repro.core.features import FeatureSet
from repro.core.models import ConstantModel
from repro.core.phases import PhaseDetector, power_phase_table
from repro.core.suite import TrickleDownSuite


def detector():
    return PhaseDetector(
        FeatureSet.of("active_fraction", "fetched_uops_per_cycle"),
        threshold=0.3,
    )


class TestPhaseDetector:
    def test_detects_idle_vs_loaded_phases(self, gcc_run):
        d = detector()
        assignments = d.fit(gcc_run.counters, gcc_run.power.power(Subsystem.CPU))
        assert d.n_phases >= 2
        assert len(assignments) == gcc_run.n_samples

    def test_phases_separate_power_levels(self, gcc_run):
        d = detector()
        d.fit(gcc_run.counters, gcc_run.power.power(Subsystem.CPU))
        table = power_phase_table(d)
        means = [row[2] for row in table if row[1] >= 5]
        assert max(means) - min(means) > 20.0  # ramp spans many Watts

    def test_single_phase_for_stationary_idle(self, idle_run):
        d = detector()
        d.fit(idle_run.counters, idle_run.power.power(Subsystem.CPU))
        table = power_phase_table(d)
        # The dominant phase holds almost all samples.
        assert table[0][1] >= idle_run.n_samples * 0.9

    def test_stability_metric(self, gcc_run, idle_run):
        d_idle = detector()
        idle_assign = d_idle.fit(idle_run.counters)
        d_gcc = detector()
        gcc_assign = d_gcc.fit(gcc_run.counters)
        assert d_idle.stability(idle_assign) >= d_gcc.stability(gcc_assign) - 0.05
        assert 0.0 <= d_gcc.stability(gcc_assign) <= 1.0

    def test_threshold_controls_granularity(self, gcc_run):
        coarse = PhaseDetector(
            FeatureSet.of("active_fraction"), threshold=1.0
        )
        fine = PhaseDetector(
            FeatureSet.of("active_fraction"), threshold=0.05
        )
        coarse.fit(gcc_run.counters)
        fine.fit(gcc_run.counters)
        assert fine.n_phases >= coarse.n_phases

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            PhaseDetector(FeatureSet.of("active_fraction"), threshold=0.0)

    def test_power_length_mismatch_rejected(self, idle_run):
        d = detector()
        with pytest.raises(ValueError):
            d.fit(idle_run.counters, np.ones(3))


class TestPowerAccountant:
    def test_per_cpu_sums_to_suite_estimate(self, paper_suite, gcc_run):
        accountant = PowerAccountant(paper_suite)
        attribution = accountant.attribute(gcc_run.counters)
        suite_cpu = paper_suite.predict(Subsystem.CPU, gcc_run.counters)
        assert np.allclose(
            attribution.cpu_watts.sum(axis=1), suite_cpu, rtol=1e-9
        )

    def test_staggered_start_shows_asymmetry_then_balance(
        self, paper_suite, gcc_run
    ):
        accountant = PowerAccountant(paper_suite)
        attribution = accountant.attribute(gcc_run.counters)
        early = attribution.cpu_watts[: gcc_run.n_samples // 8]
        late = attribution.cpu_watts[-gcc_run.n_samples // 8 :]
        # Early in the staggered ramp, one package dominates.
        assert early.max(axis=1).mean() > early.min(axis=1).mean() + 5.0
        # Once all threads run, packages are balanced.
        late_spread = late.max(axis=1).mean() - late.min(axis=1).mean()
        assert late_spread < 6.0

    def test_induced_power_attributed_by_activity(self, paper_suite, gcc_run):
        accountant = PowerAccountant(paper_suite)
        attribution = accountant.attribute(gcc_run.counters)
        assert (attribution.induced_watts >= 0.0).all()
        # Four CPUs' attributed totals are all positive and finite.
        totals = attribution.total_per_cpu
        assert totals.shape == (4,)
        assert (totals > 10.0).all()

    def test_requires_polynomial_cpu_model(self):
        suite = TrickleDownSuite({Subsystem.CPU: ConstantModel(40.0)})
        with pytest.raises(TypeError, match="polynomial"):
            PowerAccountant(suite)
