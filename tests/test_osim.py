"""Unit tests for the OS layer: threads, scheduler, page cache, timer,
interrupt accounting."""

import numpy as np
import pytest

from repro.osim.pagecache import PageCache
from repro.osim.process import SimThread, ThreadState
from repro.osim.procfs import InterruptAccounting, Vector
from repro.osim.scheduler import Scheduler
from repro.osim.timer import TimerSource
from repro.simulator.config import OsConfig
from repro.workloads.base import Phase, PhaseBehavior, ThreadPlan


def make_thread(thread_id=0, start=0.0, variability=0.0, phases=None, loop=True):
    plan = ThreadPlan(
        phases=tuple(
            phases
            or [Phase(10.0, PhaseBehavior(uops_per_cycle=1.0), "a")]
        ),
        start_time_s=start,
        loop=loop,
    )
    return SimThread(thread_id, plan, variability, np.random.default_rng(thread_id))


class TestSimThread:
    def test_not_started_before_start_time(self):
        thread = make_thread(start=5.0)
        assert thread.state(1.0) is ThreadState.NOT_STARTED
        assert thread.tick(1.0, 0.01) is None

    def test_runnable_after_start(self):
        thread = make_thread(start=5.0)
        assert thread.state(6.0) is ThreadState.RUNNABLE
        assert thread.tick(6.0, 0.01) is not None

    def test_non_looping_thread_finishes(self):
        thread = make_thread(loop=False)
        for _ in range(1001):
            thread.tick(100.0, 0.01)
        assert thread.state(100.0) is ThreadState.FINISHED

    def test_phase_progression(self):
        phases = [
            Phase(1.0, PhaseBehavior(uops_per_cycle=1.0), "first"),
            Phase(1.0, PhaseBehavior(uops_per_cycle=2.0), "second"),
        ]
        thread = make_thread(phases=phases)
        first = thread.tick(0.1, 0.5)
        assert first.phase_name == "first"
        thread.tick(0.6, 0.5)
        third = thread.tick(1.1, 0.5)
        assert third.phase_name == "second"

    def test_modulation_is_neutral_without_variability(self):
        thread = make_thread(variability=0.0)
        activity = thread.tick(0.0, 0.01)
        assert activity.modulation == pytest.approx(1.0)

    def test_modulation_varies_with_variability(self):
        thread = make_thread(variability=0.3)
        values = {round(thread.tick(0.0, 1.0).modulation, 6) for _ in range(50)}
        assert len(values) > 10

    def test_sync_requested_once_per_phase_entry(self):
        phases = [
            Phase(1.0, PhaseBehavior(uops_per_cycle=1.0), "work"),
            Phase(1.0, PhaseBehavior(uops_per_cycle=0.5, sync_file=True), "sync"),
        ]
        thread = make_thread(phases=phases)
        syncs = sum(
            thread.tick(0.0, 0.25).sync_requested for _ in range(16)  # 4s: 2 cycles
        )
        assert syncs == 2


class TestScheduler:
    def test_breadth_first_placement(self):
        scheduler = Scheduler(4, 2)
        threads = [make_thread(i) for i in range(4)]
        loads = scheduler.tick(threads, 1.0, 0.01)
        assert [load.n_running for load in loads] == [1, 1, 1, 1]

    def test_sticky_affinity(self):
        scheduler = Scheduler(2, 2)
        threads = [make_thread(i) for i in range(2)]
        scheduler.tick(threads, 1.0, 0.01)
        switches_before = scheduler.context_switches
        scheduler.tick(threads, 1.1, 0.01)
        assert scheduler.context_switches == switches_before

    def test_smt_doubling_after_packages_full(self):
        scheduler = Scheduler(2, 2)
        threads = [make_thread(i) for i in range(4)]
        loads = scheduler.tick(threads, 1.0, 0.01)
        assert [load.n_running for load in loads] == [2, 2]

    def test_overflow_time_shares(self):
        scheduler = Scheduler(1, 2)
        threads = [make_thread(i) for i in range(4)]
        loads = scheduler.tick(threads, 1.0, 0.01)
        load = loads[0]
        assert load.n_running == 4
        assert sum(a.occupancy for a in load.activities) == pytest.approx(2.0)

    def test_package_occupancy_zero_when_idle(self):
        scheduler = Scheduler(2, 2)
        loads = scheduler.tick([], 1.0, 0.01)
        assert all(load.occupancy == 0.0 for load in loads)

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            Scheduler(0, 2)


class TestPageCache:
    def test_writes_dirty_the_cache(self):
        cache = PageCache(OsConfig())
        request = cache.tick(10.0e6, 0.0, 1.0, 0.01, 90.0e6)
        assert cache.dirty_bytes == pytest.approx(1.0e5)
        assert request.write_bytes == 0.0  # below background threshold

    def test_read_misses_reach_the_disk(self):
        cache = PageCache(OsConfig())
        request = cache.tick(0.0, 10.0e6, 0.8, 0.01, 90.0e6)
        assert request.read_bytes == pytest.approx(10.0e6 * 0.01 * 0.2)

    def test_sync_flushes_everything(self):
        cache = PageCache(OsConfig())
        cache.tick(100.0e6, 0.0, 1.0, 0.1, 90.0e6)
        dirty = cache.dirty_bytes
        cache.request_sync()
        drained = 0.0
        for _ in range(300):
            drained += cache.tick(0.0, 0.0, 1.0, 0.01, 90.0e6).write_bytes
            if not cache.sync_in_progress:
                break
        assert drained == pytest.approx(dirty, rel=1e-6)
        assert cache.dirty_bytes == pytest.approx(0.0)

    def test_sync_drain_limited_by_disk_speed(self):
        cache = PageCache(OsConfig())
        cache.tick(500.0e6, 0.0, 1.0, 0.1, 90.0e6)
        cache.request_sync()
        request = cache.tick(0.0, 0.0, 1.0, 0.01, 90.0e6)
        assert request.write_bytes <= 90.0e6 * 0.01 * 1.0001

    def test_background_writeback_kicks_in(self):
        config = OsConfig()
        cache = PageCache(config)
        threshold = config.page_cache_bytes * config.dirty_background_ratio
        cache.tick(threshold * 1.5 / 0.01, 0.0, 1.0, 0.01, 90.0e6)
        request = cache.tick(0.0, 0.0, 1.0, 0.01, 90.0e6)
        assert request.write_bytes > 0.0

    def test_dirty_fraction_bounded_under_sustained_writes(self):
        cache = PageCache(OsConfig())
        for _ in range(2000):
            cache.tick(120.0e6, 0.0, 1.0, 0.01, 90.0e6)
        assert cache.dirty_fraction < 1.5


class TestTimerSource:
    def test_hz_rate_maintained(self):
        timer = TimerSource(OsConfig(timer_hz=1000.0), 4)
        total = np.zeros(4)
        for _ in range(100):
            total += timer.tick(0.01)
        assert np.allclose(total, 1000.0)

    def test_fractional_ticks_accumulate(self):
        timer = TimerSource(OsConfig(timer_hz=100.0), 1)
        fired = [timer.tick(0.004)[0] for _ in range(5)]  # 0.4 irq/tick
        assert sum(fired) == 2


class TestInterruptAccounting:
    def test_round_robin_distribution(self):
        acct = InterruptAccounting(4)
        cpus = [acct.deliver(Vector.DISK, 1) for _ in range(8)]
        assert cpus == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_timer_pinned_to_cpu(self):
        acct = InterruptAccounting(2)
        acct.deliver(Vector.TIMER, 5, cpu=1)
        snapshot = acct.snapshot()
        assert snapshot[Vector.TIMER] == [0.0, 5.0]

    def test_read_and_clear(self):
        acct = InterruptAccounting(2)
        acct.deliver(Vector.DISK, 3, cpu=0)
        first = acct.read_and_clear()
        assert first[Vector.DISK][0] == 3.0
        second = acct.read_and_clear()
        assert second[Vector.DISK][0] == 0.0

    def test_per_cpu_totals_span_vectors(self):
        acct = InterruptAccounting(2)
        acct.deliver(Vector.TIMER, 2, cpu=0)
        acct.deliver(Vector.DISK, 1, cpu=0)
        assert acct.per_cpu_total() == [3.0, 0.0]

    def test_invalid_inputs_rejected(self):
        acct = InterruptAccounting(2)
        with pytest.raises(ValueError):
            acct.deliver(Vector.DISK, -1)
        with pytest.raises(ValueError):
            acct.deliver(Vector.DISK, 1, cpu=7)
