"""Integration tests for the Server tick loop and simulate_workload."""

import numpy as np
import pytest

from repro.core.events import Event, SUBSYSTEMS, Subsystem
from repro.simulator.config import fast_config
from repro.simulator.system import Server, simulate_workload
from repro.workloads.registry import get_workload


class TestServerRun:
    def test_run_produces_aligned_traces(self, idle_run):
        assert idle_run.counters.n_samples == idle_run.power.n_samples
        assert np.allclose(
            idle_run.counters.timestamps, idle_run.power.timestamps
        )

    def test_all_events_recorded(self, gcc_run):
        for event in Event:
            assert event in gcc_run.counters.counts

    def test_all_subsystems_measured(self, gcc_run):
        assert set(gcc_run.power.subsystems) == set(SUBSYSTEMS)

    def test_counts_are_nonnegative(self, gcc_run):
        for event in Event:
            assert (gcc_run.counters.per_cpu(event) >= 0).all(), event

    def test_cycles_match_frequency(self, idle_run, config):
        per_window = idle_run.counters.per_cpu(Event.CYCLES)
        expected = config.cpu.frequency_hz * idle_run.counters.durations
        for cpu in range(per_window.shape[1]):
            assert np.allclose(per_window[:, cpu], expected, rtol=1e-6)

    def test_halted_never_exceeds_cycles(self, mcf_run):
        cycles = mcf_run.counters.per_cpu(Event.CYCLES)
        halted = mcf_run.counters.per_cpu(Event.HALTED_CYCLES)
        assert (halted <= cycles + 1e-6).all()

    def test_determinism_same_seed(self, config):
        spec = get_workload("gcc")
        a = simulate_workload(spec, duration_s=20.0, seed=5, config=config)
        b = simulate_workload(spec, duration_s=20.0, seed=5, config=config)
        assert np.allclose(
            a.counters.total(Event.FETCHED_UOPS),
            b.counters.total(Event.FETCHED_UOPS),
        )
        assert np.allclose(
            a.power.power(Subsystem.CPU), b.power.power(Subsystem.CPU)
        )

    def test_different_seeds_differ(self, config):
        spec = get_workload("gcc")
        a = simulate_workload(spec, duration_s=20.0, seed=5, config=config)
        b = simulate_workload(spec, duration_s=20.0, seed=6, config=config)
        assert not np.allclose(
            a.power.power(Subsystem.CPU), b.power.power(Subsystem.CPU)
        )

    def test_too_short_run_rejected(self, config):
        with pytest.raises(ValueError, match="two sampling windows"):
            simulate_workload(get_workload("idle"), duration_s=1.0, config=config)

    def test_metadata_records_truth(self, idle_run):
        truth = idle_run.metadata["true_mean_power_w"]
        assert set(truth) == {s.value for s in SUBSYSTEMS}
        # The noisy measurement should track true power closely.
        for subsystem in SUBSYSTEMS:
            measured = idle_run.power.mean(subsystem)
            assert measured == pytest.approx(truth[subsystem.value], rel=0.05)


class TestTrickleDownCausality:
    """The causal chains of the paper's Figure 1, observed end to end."""

    def test_idle_machine_is_mostly_halted(self, idle_run):
        cycles = idle_run.counters.total(Event.CYCLES)
        halted = idle_run.counters.total(Event.HALTED_CYCLES)
        assert (halted / cycles).mean() > 0.95

    def test_cpu_load_reduces_halted_cycles(self, gcc_run, idle_run):
        gcc_halted = (
            gcc_run.counters.total(Event.HALTED_CYCLES)
            / gcc_run.counters.total(Event.CYCLES)
        ).mean()
        idle_halted = (
            idle_run.counters.total(Event.HALTED_CYCLES)
            / idle_run.counters.total(Event.CYCLES)
        ).mean()
        assert gcc_halted < idle_halted - 0.3

    def test_misses_induce_memory_power(self, mcf_run, idle_run):
        assert mcf_run.power.mean(Subsystem.MEMORY) > idle_run.power.mean(
            Subsystem.MEMORY
        ) + 5.0

    def test_disk_io_induces_interrupts_and_io_power(self, diskload_run, idle_run):
        disk_irqs = diskload_run.counters.total(Event.DISK_INTERRUPTS).sum()
        assert disk_irqs > 100.0
        assert idle_run.counters.total(Event.DISK_INTERRUPTS).sum() == 0.0
        assert diskload_run.power.mean(Subsystem.IO) > idle_run.power.mean(
            Subsystem.IO
        ) + 1.0

    def test_dma_visible_on_the_bus(self, diskload_run, idle_run):
        dma = diskload_run.counters.total(Event.DMA_ACCESSES)
        assert dma.mean() > idle_run.counters.total(Event.DMA_ACCESSES).mean()

    def test_interrupt_floor_from_timer(self, idle_run, config):
        per_second = idle_run.counters.total(Event.INTERRUPTS) / (
            idle_run.counters.durations
        )
        expected = config.osim.timer_hz * config.num_packages
        assert per_second.mean() == pytest.approx(expected, rel=0.05)

    def test_staggered_starts_ramp_power(self, gcc_run):
        cpu = gcc_run.power.power(Subsystem.CPU)
        first_quarter = cpu[: len(cpu) // 4].mean()
        last_quarter = cpu[-len(cpu) // 4 :].mean()
        assert last_quarter > first_quarter + 30.0

    def test_disk_power_dynamic_range_is_small(self, diskload_run, idle_run):
        """Paper: DiskLoad raises disk power only ~2.8 % over idle."""
        idle_disk = idle_run.power.mean(Subsystem.DISK)
        load_disk = diskload_run.power.mean(Subsystem.DISK)
        assert idle_disk < load_disk < idle_disk * 1.10

    def test_sync_phases_modulate_io_power(self, diskload_run):
        io_power = diskload_run.power.power(Subsystem.IO)
        assert io_power.max() - io_power.min() > 0.8


class TestServerInternals:
    def test_tick_returns_power_breakdown(self, config):
        server = Server(config, get_workload("idle"), seed=1)
        breakdown = server.tick()
        assert breakdown.total_w > 100.0
        assert breakdown.cpu_w > 30.0

    def test_energy_account_tracks_time(self, config):
        server = Server(config, get_workload("idle"), seed=1)
        for _ in range(10):
            server.tick()
        assert server.energy.elapsed_s == pytest.approx(10 * config.tick_s)
