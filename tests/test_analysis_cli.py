"""Tests for the experiment harness, table rendering and the CLI."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    ExperimentContext,
    PAPER_TABLE1,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_WORKLOADS,
)
from repro.analysis.tables import format_table, format_trace_summary, sparkline
from repro.cli import main as cli_main
from repro.simulator.config import fast_config


@pytest.fixture(scope="module")
def small_context(tmp_path_factory):
    """A context with short runs and a disk cache, for harness tests."""
    cache = tmp_path_factory.mktemp("runs")
    return ExperimentContext(
        config=fast_config(),
        seed=11,
        duration_s=120.0,
        cache_dir=str(cache),
    )


class TestPaperReferenceData:
    def test_reference_tables_cover_expected_workloads(self):
        assert set(PAPER_TABLE1) == set(PAPER_WORKLOADS)
        assert len(PAPER_TABLE3) == 7
        assert len(PAPER_TABLE4) == 5

    def test_reference_rows_have_five_subsystems(self):
        for table in (PAPER_TABLE1, PAPER_TABLE3, PAPER_TABLE4):
            for row in table.values():
                assert len(row) == 5


class TestExperimentContext:
    def test_runs_are_cached_in_memory(self, small_context):
        a = small_context.run("idle")
        b = small_context.run("idle")
        assert a is b

    def test_disk_cache_round_trip(self, small_context):
        small_context.run("idle")
        fresh = ExperimentContext(
            config=small_context.config,
            seed=small_context.seed,
            duration_s=small_context.duration_s,
            cache_dir=small_context.cache_dir,
        )
        run = fresh.run("idle")
        assert run.n_samples == small_context.run("idle").n_samples
        assert np.allclose(
            run.power.total(), small_context.run("idle").power.total()
        )

    def test_paper_suite_trains_once(self, small_context):
        assert small_context.paper_suite() is small_context.paper_suite()

    def test_steady_run_is_shorter(self, small_context):
        full = small_context.run("idle")
        steady = small_context.steady_run("idle")
        assert steady.n_samples <= full.n_samples


class TestTableRendering:
    def test_format_table_alignment(self):
        text = format_table(
            "Title", ("name", "watts"), [["idle", 38.4], ["gcc", 162.0]]
        )
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "38.40" in text
        assert "gcc" in text

    def test_format_table_empty_rejected(self):
        with pytest.raises(ValueError):
            format_table("t", ("a",), [])

    def test_sparkline_length_and_range(self):
        line = sparkline(np.linspace(0.0, 1.0, 500), width=40)
        assert len(line) == 40
        assert line[0] == " " and line[-1] == "@"

    def test_sparkline_constant_series(self):
        assert set(sparkline(np.full(10, 5.0))) <= {" "}

    def test_trace_summary_contains_stats(self):
        t = np.arange(1.0, 11.0)
        text = format_trace_summary("Fig", t, t + 10.0, t + 10.5, 2.5)
        assert "avg error=2.50%" in text
        assert "measured" in text and "modeled" in text


class TestCli:
    def test_list_command(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in PAPER_WORKLOADS:
            assert name in out

    def test_fig1_command(self, capsys):
        assert cli_main(["fig1"]) == 0
        assert "Propagation" in capsys.readouterr().out

    def test_run_command(self, capsys, tmp_path):
        code = cli_main(
            [
                "run",
                "idle",
                "--duration",
                "30",
                "--tick-ms",
                "10",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "idle" in out and "cpu" in out

    def test_unknown_command_errors(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])

    def test_run_without_workload_errors(self):
        with pytest.raises(SystemExit):
            cli_main(["run"])
