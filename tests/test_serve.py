"""Tests for the streaming estimation service (PR: repro.serve).

Covers the tentpole end to end: the wire protocol's bit-exact
round-trip, the bounded shard queues' shedding policy, staleness and
SLO burn tracking with injected clocks, the service's streamed-equals-
batch bit-identity guarantee (inline and threaded), the chaos
``kill_shard`` hook's degraded-but-serving semantics, the HTTP POST
``/ingest`` + ``/nodes`` + ``/service`` + ``/slo`` routes, the socket
line protocol, and the ``repro-power serve`` CLI — plus the satellites:
the clear address-in-use error, ``--port 0`` printing the bound
ephemeral port, the windowed registry under wall-clock misbehaviour,
and the ``obs`` pretty-printer's histogram quantile columns.
"""

from __future__ import annotations

import json
import os
import re
import socket
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import obs
from repro.core.estimator import SystemPowerEstimator
from repro.core.events import Event, Subsystem
from repro.core.features import FeatureSet
from repro.core.models import ConstantModel, PolynomialModel
from repro.core.suite import TrickleDownSuite
from repro.obs.flight import FlightRecorder
from repro.obs.http import ObservabilityServer
from repro.obs.live import WindowedRegistry
from repro.serve import (
    BoundedQueue,
    EstimationService,
    LineSocketServer,
    ProtocolError,
    SampleBatch,
    SLOEngine,
    StalenessTracker,
    decode_line,
    decode_lines,
    encode_frame,
    encode_sample,
    frames_from_run,
    required_events,
)


@pytest.fixture(autouse=True)
def clean_obs():
    """Telemetry is process-global; every test starts and ends clean."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _toy_suite() -> TrickleDownSuite:
    """A hand-built paper-shaped suite (bit-identity and the ops plane
    depend on the evaluate mechanics, not on fitted coefficients)."""
    return TrickleDownSuite(
        {
            Subsystem.CPU: PolynomialModel(
                FeatureSet.of("active_fraction", "fetched_uops_per_cycle"),
                degree=1,
                coefficients=[35.0, 20.0, 5.0],
            ),
            Subsystem.MEMORY: PolynomialModel(
                FeatureSet.of("bus_transactions_per_mcycle"),
                degree=2,
                coefficients=[18.0, 0.5, 0.01],
            ),
            Subsystem.IO: PolynomialModel(
                FeatureSet.of("interrupts_per_mcycle"),
                degree=1,
                coefficients=[2.0, 0.1],
            ),
            Subsystem.DISK: PolynomialModel(
                FeatureSet.of("disk_interrupts_per_mcycle"),
                degree=1,
                coefficients=[10.0, 0.2],
            ),
            Subsystem.CHIPSET: ConstantModel(19.9),
        },
        recipe_name="serve-test-toy",
    )


@pytest.fixture(scope="module")
def suite() -> TrickleDownSuite:
    return _toy_suite()


def _wait_for(predicate, timeout_s: float = 10.0, interval_s: float = 0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


def _get(url: str):
    """(status, document) for a GET, errors included."""
    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def _post(url: str, body: str):
    request = urllib.request.Request(
        url, data=body.encode("utf-8"), headers={"Content-Type": "text/plain"}
    )
    try:
        with urllib.request.urlopen(request, timeout=10.0) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


# -- wire protocol -----------------------------------------------------


class TestProtocol:
    def test_single_sample_round_trip_is_exact(self, rng):
        counts = {
            Event.CYCLES: list(rng.uniform(1e8, 2e9, size=4)),
            Event.FETCHED_UOPS: list(rng.uniform(1e7, 1e9, size=4)),
        }
        line = encode_sample(
            "n1", 12.5, 1.0, counts, true_w={"cpu": 40.25}, trace_id="req-1"
        )
        batch = decode_line(line)
        assert batch.node == "n1"
        assert batch.n_samples == 1
        assert batch.timestamps == [12.5]
        assert batch.durations == [1.0]
        assert batch.counts[Event.CYCLES].tolist() == [counts[Event.CYCLES]]
        assert batch.true_w == {"cpu": [40.25]}
        assert batch.trace_id == "req-1"

    def test_frame_round_trip_is_bit_exact(self, rng):
        rows = rng.uniform(0.0, 3e9, size=(5, 2)).tolist()
        line = encode_frame(
            "n2",
            list(rng.uniform(0.0, 100.0, size=5)),
            [1.0] * 5,
            {Event.CYCLES: rows},
        )
        batch = decode_line(line)
        # JSON float repr round-trips exactly: the decoded floats are
        # the same bits, not approximations.
        assert batch.counts[Event.CYCLES].tolist() == rows

    def test_frames_from_run_reconstruct_the_trace_exactly(self, suite, gcc_run):
        events = required_events(suite)
        lines = frames_from_run(gcc_run, "n0", frame_samples=16, events=events)
        batches = [decode_line(line) for line in lines]
        trace = gcc_run.counters
        timestamps = [t for b in batches for t in b.timestamps]
        assert timestamps == trace.timestamps.tolist()
        for event in events:
            rows = [row for b in batches for row in b.counts[event]]
            assert np.array_equal(np.asarray(rows), trace.counts[event])
        # Truth watts ride along, split the same way.
        cpu = [v for b in batches for v in b.true_w["cpu"]]
        assert cpu == gcc_run.power.watts[Subsystem.CPU].tolist()

    def test_required_events_is_the_lean_set(self, suite, gcc_run):
        events = required_events(suite)
        assert events  # the toy suite consumes counters
        assert events < set(gcc_run.counters.counts)  # strictly leaner

    @pytest.mark.parametrize(
        "line, fragment",
        [
            ("{not json", "not valid JSON"),
            ("[1, 2]", "JSON object"),
            ('{"node": "n", "t": 1.0, "dur": 1.0}', "missing key"),
            (
                '{"node": "", "t": 1.0, "dur": 1.0, "counts": {"cycles": [1.0]}}',
                "non-empty string",
            ),
            (
                '{"node": "n", "t": [1.0, 2.0], "dur": [1.0],'
                ' "counts": {"cycles": [[1.0], [1.0]]}}',
                "same length",
            ),
            (
                '{"node": "n", "t": [1.0, 2.0], "dur": [1.0, 1.0],'
                ' "counts": {"cycles": [[1.0]]}}',
                "rows",
            ),
            (
                '{"node": "n", "t": [1.0], "dur": [1.0],'
                ' "counts": {"cycles": [[1.0, 2.0]],'
                ' "fetched_uops": [[1.0]]}}',
                "same cpu count",
            ),
            (
                '{"node": "n", "t": [1.0], "dur": [1.0],'
                ' "counts": {"cycles": [[1.0, 2.0], [3.0]]}}',
                "rows",
            ),
            (
                '{"node": "n", "t": 1.0, "dur": 1.0,'
                ' "counts": {"never_heard_of_it": [1.0]}}',
                "no known events",
            ),
            (
                '{"node": "n", "t": [1.0], "dur": [1.0],'
                ' "counts": {"cycles": [[1.0]]},'
                ' "true_w": {"cpu": [1.0, 2.0]}}',
                "true_w",
            ),
            # Element-type validation: nothing that passes decode may
            # blow up np.asarray inside a shard worker.
            (
                '{"node": "n", "t": 1.0, "dur": 1.0,'
                ' "counts": {"cycles": ["oops", "bad"]}}',
                "numbers",
            ),
            (
                '{"node": "n", "t": [1.0], "dur": [1.0],'
                ' "counts": {"cycles": [[1.0, null]]}}',
                "finite",
            ),
            (
                '{"node": "n", "t": [1.0], "dur": [1.0],'
                ' "counts": {"cycles": [[1.0, Infinity]]}}',
                "finite",
            ),
            (
                '{"node": "n", "t": "noon", "dur": 1.0,'
                ' "counts": {"cycles": [1.0]}}',
                "t must be a finite number",
            ),
            (
                '{"node": "n", "t": [1.0, "noon"], "dur": [1.0, 1.0],'
                ' "counts": {"cycles": [[1.0], [1.0]]}}',
                "t must contain only finite numbers",
            ),
            (
                '{"node": "n", "t": 1.0, "dur": NaN,'
                ' "counts": {"cycles": [1.0]}}',
                "dur must be a finite number",
            ),
            (
                '{"node": "n", "t": 1.0, "dur": 1.0,'
                ' "counts": {"cycles": [1.0]},'
                ' "true_w": {"cpu": "lots"}}',
                "finite numbers",
            ),
        ],
    )
    def test_malformed_payloads_raise_protocol_error(self, line, fragment):
        with pytest.raises(ProtocolError, match=re.escape(fragment)):
            decode_line(line)

    def test_keep_events_rejects_payloads_missing_required_events(self):
        line = encode_sample("n", 1.0, 1.0, {Event.CYCLES: [1.0]})
        keep = frozenset({Event.CYCLES, Event.FETCHED_UOPS})
        with pytest.raises(ProtocolError, match="fetched_uops"):
            decode_line(line, keep)

    def test_keep_events_drops_extra_events(self):
        line = encode_sample(
            "n", 1.0, 1.0, {Event.CYCLES: [1.0], Event.FETCHED_UOPS: [2.0]}
        )
        batch = decode_line(line, frozenset({Event.CYCLES}))
        assert set(batch.counts) == {Event.CYCLES}

    def test_decode_lines_isolates_bad_lines(self):
        good = encode_sample("n", 1.0, 1.0, {Event.CYCLES: [1.0]})
        body = "\n".join([good, "", "{broken", good, "   "])
        batches, errors = decode_lines(body)
        assert len(batches) == 2
        assert len(errors) == 1
        assert "JSON" in errors[0]


# -- bounded queues ----------------------------------------------------


class TestBoundedQueue:
    def test_fifo_and_depth_tracking(self):
        queue = BoundedQueue(depth=4)
        for i in range(3):
            assert queue.put(i)
        assert queue.depth == 3
        assert queue.high_water == 3
        assert [queue.get(timeout=0.0) for _ in range(3)] == [0, 1, 2]
        assert queue.depth == 0
        assert queue.high_water == 3  # high water is sticky

    def test_overflow_sheds_instead_of_blocking(self):
        queue = BoundedQueue(depth=2)
        assert queue.put("a") and queue.put("b")
        assert not queue.put("c")
        assert queue.shed_total == 1
        assert queue.stats()["shed_total"] == 1
        assert queue.stats()["put_total"] == 2

    def test_closed_queue_rejects_puts(self):
        queue = BoundedQueue(depth=2)
        queue.close()
        assert queue.closed
        assert not queue.put("a")
        assert queue.shed_total == 1

    def test_get_times_out_with_none(self):
        assert BoundedQueue(depth=1).get(timeout=0.01) is None

    def test_drain_pops_up_to_limit(self):
        queue = BoundedQueue(depth=8)
        for i in range(5):
            queue.put(i)
        assert queue.drain(3) == [0, 1, 2]
        assert queue.drain(10) == [3, 4]
        assert queue.drain(1) == []

    def test_rejects_nonpositive_depth(self):
        with pytest.raises(ValueError):
            BoundedQueue(depth=0)


# -- staleness ---------------------------------------------------------


class TestStalenessTracker:
    def test_fresh_then_stale_with_injected_clock(self):
        clock = [100.0]
        tracker = StalenessTracker(stale_after_s=5.0, clock=lambda: clock[0])
        tracker.touch("a")
        tracker.touch("b")
        assert tracker.sweep() == (["a", "b"], [])
        clock[0] = 104.0
        assert not tracker.is_stale("a")
        clock[0] = 106.0
        tracker.touch("b")
        fresh, stale = tracker.sweep()
        assert fresh == ["b"] and stale == ["a"]
        assert tracker.age_s("a") == pytest.approx(6.0)
        document = tracker.to_json()
        assert document["stale"] == ["a"]
        assert document["age_s"]["b"] == pytest.approx(0.0)

    def test_forget_removes_the_node(self):
        tracker = StalenessTracker(stale_after_s=1.0, clock=lambda: 0.0)
        tracker.touch("a")
        tracker.forget("a")
        assert tracker.age_s("a") is None
        assert tracker.sweep() == ([], [])

    def test_rejects_nonpositive_horizon(self):
        with pytest.raises(ValueError):
            StalenessTracker(stale_after_s=0.0)


# -- SLO burn ----------------------------------------------------------


class TestSLOEngine:
    def _engine(self, clock, **kwargs):
        return SLOEngine(
            short_window_s=30.0,
            long_window_s=120.0,
            clock=lambda: clock[0],
            **kwargs,
        )

    def test_all_good_burns_nothing(self):
        clock = [0.0]
        engine = self._engine(clock)
        engine.record_error_batch(500, 0, now=10.0)
        state = engine.check(20.0)["slos"]["error"]
        assert state["burn_short"] == 0.0
        assert not state["fast_burn"]
        assert state["budget_remaining"] == 1.0
        assert engine.fast_burning == ()

    def test_fast_burn_fires_once_and_dumps_a_flight_bundle(self, tmp_path):
        obs.enable()
        clock = [0.0]
        recorder = FlightRecorder(out_dir=str(tmp_path))
        engine = self._engine(clock, flight=recorder)
        engine.record_error_batch(0, 100, now=10.0)
        state = engine.check(15.0)["slos"]["error"]
        assert state["fast_burn"] and state["fast_burn_count"] == 1
        assert "error" in engine.fast_burning
        bundles = list(tmp_path.glob("flight-*-slo-fast-burn-error"))
        assert len(bundles) == 1
        assert obs.counter("slo_fast_burn_total", {"slo": "error"}) == 1.0
        # Still burning is not a new edge: no second bundle, no recount.
        state = engine.check(16.0)["slos"]["error"]
        assert state["fast_burn_count"] == 1
        assert len(list(tmp_path.glob("flight-*"))) == 1

    def test_fast_burn_recovers_when_bad_events_age_out(self):
        clock = [0.0]
        engine = self._engine(clock)
        engine.record_error_batch(0, 100, now=10.0)
        assert engine.check(15.0)["slos"]["error"]["fast_burn"]
        engine.record_error_batch(1000, 0, now=130.0)
        state = engine.check(140.0)["slos"]["error"]
        assert not state["fast_burn"]
        assert engine.fast_burning == ()

    def test_freshness_slo_burns_on_stale_sweeps(self):
        clock = [0.0]
        engine = self._engine(clock)
        for t in (1.0, 2.0, 3.0):
            engine.record_freshness(0, 4, now=t)
        assert engine.check(4.0)["slos"]["freshness"]["fast_burn"]

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            SLOEngine(short_window_s=60.0, long_window_s=30.0)
        with pytest.raises(ValueError):
            SLOEngine(fast_burn_rate=0.0)
        with pytest.raises(ValueError):
            SLOEngine(error_objective=1.0)


# -- bit identity: streamed == batch -----------------------------------


class TestBitIdentity:
    """The tentpole acceptance: streamed estimates are bit-identical to
    the offline batch path on the same samples, however framed."""

    def _batch_reference(self, suite, run):
        estimates = SystemPowerEstimator(suite).estimate_trace(run.counters)
        return [
            (
                {s.value: w for s, w in e.subsystem_w.items()},
                e.total_w,
            )
            for e in estimates
        ]

    @pytest.mark.parametrize("frame_samples", [1, 7, 64])
    def test_inline_ingest_matches_estimate_trace(
        self, suite, gcc_run, frame_samples
    ):
        reference = self._batch_reference(suite, gcc_run)
        service = EstimationService(
            suite,
            shards=1,
            ops=False,
            keep_estimates=True,
            node_history=len(reference) + 1,
        )
        for line in frames_from_run(
            gcc_run,
            "n0",
            frame_samples=frame_samples,
            events=required_events(suite),
            include_truth=False,
        ):
            receipt = service.ingest_inline(line)
            assert receipt["shed"] == 0 and not receipt["errors"]
        streamed = list(service._nodes["n0"].estimates)
        assert len(streamed) == len(reference)
        for got, (want, want_total) in zip(streamed, reference):
            assert got == want  # exact float equality, not approx
        history = list(service._nodes["n0"].history)
        assert [w for _, w in history] == [t for _, t in reference]

    def test_threaded_ingest_matches_estimate_trace(self, suite, gcc_run):
        reference = self._batch_reference(suite, gcc_run)
        lines = {
            node: frames_from_run(
                gcc_run,
                node,
                frame_samples=16,
                events=required_events(suite),
                include_truth=False,
            )
            for node in ("alpha", "beta", "gamma")
        }
        with EstimationService(
            suite,
            shards=3,
            ops=False,
            keep_estimates=True,
            node_history=len(reference) + 1,
        ) as service:
            # Interleave nodes so coalescing mixes signatures mid-queue.
            for group in zip(*lines.values()):
                for line in group:
                    receipt = service.ingest(line)
                    assert receipt["shed"] == 0
            expected = 3 * len(reference)
            assert _wait_for(lambda: service.samples_total >= expected)
            for node in lines:
                streamed = list(service._nodes[node].estimates)
                assert len(streamed) == len(reference)
                for got, (want, _) in zip(streamed, reference):
                    assert got == want


# -- service mechanics -------------------------------------------------


class TestEstimationService:
    def test_shard_routing_is_stable_and_in_range(self, suite):
        service = EstimationService(suite, shards=3)
        for i in range(32):
            node = f"node-{i}"
            shard = service.shard_for(node)
            assert 0 <= shard < 3
            assert shard == service.shard_for(node)

    def test_full_queue_sheds_with_receipt_and_counter(self, suite, gcc_run):
        obs.enable()
        service = EstimationService(suite, shards=1, queue_depth=2)
        lines = frames_from_run(
            gcc_run, "n0", frame_samples=8, events=required_events(suite)
        )
        assert len(lines) > 3
        # Workers never started: the queue fills at depth 2, the rest
        # sheds visibly instead of growing without bound.
        shed = sum(service.ingest(line)["shed"] for line in lines)
        assert shed > 0
        assert service.shed_samples_total == shed
        assert obs.counter("serve_shed_samples_total", {"shard": "0"}) == shed

    def test_decode_errors_are_counted_not_fatal(self, suite):
        service = EstimationService(suite, shards=1)
        receipt = service.ingest("{broken\n")
        assert receipt["accepted"] == 0
        assert len(receipt["errors"]) == 1
        assert service.decode_errors_total == 1

    def test_truth_scoring_sets_error_and_attaches_drift(self, suite, gcc_run):
        service = EstimationService(suite, shards=1, ops=False)
        for line in frames_from_run(
            gcc_run, "n0", frame_samples=32, events=required_events(suite)
        ):
            service.ingest_inline(line)
        document = service.node_document("n0")
        assert document["error_pct"] is not None
        assert document["drift"] is not None
        assert document["n_samples"] == gcc_run.counters.n_samples

    def test_attribution_rides_along_when_enabled(self, suite, gcc_run):
        service = EstimationService(suite, shards=1, ops=False, attribute=True)
        line = frames_from_run(
            gcc_run, "n0", frame_samples=16, events=required_events(suite)
        )[0]
        service.ingest_inline(line)
        attribution = service.node_document("n0")["attribution"]
        assert attribution is not None
        assert Subsystem.CPU.value in attribution

    def test_stale_node_flips_health_and_burns_freshness(self, suite, gcc_run):
        clock = [1000.0]
        service = EstimationService(
            suite,
            shards=1,
            stale_after_s=5.0,
            clock=lambda: clock[0],
            slo=SLOEngine(
                short_window_s=30.0,
                long_window_s=120.0,
                clock=lambda: clock[0],
            ),
        )
        line = frames_from_run(
            gcc_run, "n0", frame_samples=16, events=required_events(suite)
        )[0]
        service.ingest_inline(line)
        verdict = service.health()
        assert verdict["nodes_fresh"] == 1 and not verdict["stale_nodes"]
        clock[0] += 10.0
        for _ in range(3):
            service.tick()
            clock[0] += 1.0
        verdict = service.health()
        assert verdict["status"] == "stale"
        assert not verdict["healthy"]
        assert verdict["stale_nodes"] == ["n0"]
        assert "freshness" in verdict["slo_fast_burn"]
        nodes = service.nodes_document()
        assert nodes["nodes"][0]["stale"]
        assert nodes["fleet"]["stale"] == 1

    def test_kill_shard_is_degraded_but_serving(self, suite, gcc_run):
        events = required_events(suite)
        with EstimationService(suite, shards=2, ops=False) as service:
            dead_node = next(
                f"node-{i}" for i in range(64) if service.shard_for(f"node-{i}") == 0
            )
            live_node = next(
                f"node-{i}" for i in range(64) if service.shard_for(f"node-{i}") == 1
            )
            result = service.kill_shard(0)
            assert result["killed"] and not result["alive"]
            assert service.dead_shards() == [0]
            verdict = service.health()
            assert verdict["status"] == "degraded"
            assert verdict["healthy"]  # degraded but serving: still 200
            line = frames_from_run(
                gcc_run, dead_node, frame_samples=8, events=events
            )[0]
            dead_line = line
            assert service.ingest(dead_line)["shed"] > 0
            live_line = frames_from_run(
                gcc_run, live_node, frame_samples=8, events=events
            )[0]
            receipt = service.ingest(live_line)
            assert receipt["accepted"] > 0 and receipt["shed"] == 0
            assert _wait_for(
                lambda: service.samples_total >= receipt["accepted"]
            )

    def test_poison_batch_drops_but_worker_survives(
        self, suite, gcc_run, monkeypatch
    ):
        """An exception inside evaluate must not kill the shard thread:
        the group is logged, counted and dropped, and the next batch
        from the same shard still processes."""
        events = required_events(suite)
        lines = frames_from_run(gcc_run, "n0", frame_samples=8, events=events)[:2]
        real_evaluate = suite.evaluate
        calls = {"n": 0}

        def flaky_evaluate(trace, attribute=False):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected estimator bug")
            return real_evaluate(trace, attribute=attribute)

        monkeypatch.setattr(suite, "evaluate", flaky_evaluate)
        with EstimationService(suite, shards=1, ops=False, coalesce=1) as service:
            assert service.ingest(lines[0])["accepted"] == 8
            assert _wait_for(lambda: service.poison_samples_total == 8)
            assert service.shards[0].alive
            assert service.dead_shards() == []
            assert service.ingest(lines[1])["accepted"] == 8
            assert _wait_for(lambda: service.samples_total >= 8)
            counters = service.service_document()["counters"]
            assert counters["poison_samples_total"] == 8

    def test_stage_document_has_quantiles_and_exemplars(self, suite, gcc_run):
        obs.enable()
        service = EstimationService(suite, shards=1, span_sample=1)
        for line in frames_from_run(
            gcc_run, "n0", frame_samples=16, events=required_events(suite)
        ):
            service.ingest_inline(line)
        stages = service.stage_document()
        for stage in ("decode", "evaluate", "publish"):
            assert stage in stages
            entry = stages[stage]
            assert entry["count"] > 0
            assert entry["p50_us"] <= entry["p95_us"] <= entry["p99_us"]
            assert entry["exemplar_trace"].startswith("ingest-")

    def test_tick_publishes_backpressure_and_fleet_gauges(self, suite, gcc_run):
        obs.enable()
        service = EstimationService(suite, shards=2)
        line = frames_from_run(
            gcc_run, "n0", frame_samples=16, events=required_events(suite)
        )[0]
        service.ingest_inline(line)
        service.tick()
        assert obs.gauge_value("serve_nodes_fresh") == 1.0
        assert obs.gauge_value("serve_queue_depth", {"shard": "0"}) == 0.0
        total = obs.gauge_value("serve_fleet_power_watts", {"agg": "sum"})
        assert total == pytest.approx(
            service.nodes_document()["fleet"]["power_w"]["sum"]
        )

    def test_service_document_shape(self, suite):
        service = EstimationService(suite, shards=2)
        document = service.service_document()
        assert len(document["shards"]) == 2
        assert document["counters"]["samples_total"] == 0
        assert document["required_events"] == sorted(
            e.value for e in required_events(suite)
        )
        assert "slos" in document["slo"]
        assert document["health"]["status"] == "ok"

    def test_span_sampling_traces_one_in_n(self, suite):
        obs.enable()
        service = EstimationService(suite, shards=1, span_sample=4)
        ids = [service._next_trace_id() for _ in range(8)]
        assert ids[0] is not None and ids[4] is not None
        assert ids[1] is None and ids[2] is None and ids[3] is None

    def test_rejects_zero_shards(self, suite):
        with pytest.raises(ValueError):
            EstimationService(suite, shards=0)


# -- HTTP routes -------------------------------------------------------


class TestHttpRoutes:
    @pytest.fixture()
    def served(self, suite):
        clock = [500.0]
        service = EstimationService(
            suite,
            shards=2,
            stale_after_s=5.0,
            clock=lambda: clock[0],
            slo=SLOEngine(clock=lambda: clock[0]),
        )
        endpoint = ObservabilityServer(service=service, port=0)
        with service, endpoint:
            yield service, endpoint, clock

    def test_post_ingest_then_scrape_nodes(self, served, suite, gcc_run):
        service, endpoint, _ = served
        line = frames_from_run(
            gcc_run, "n0", frame_samples=16, events=required_events(suite)
        )[0]
        status, receipt = _post(endpoint.url("/ingest"), line + "\n")
        assert status == 200
        assert receipt["accepted"] == 16 and receipt["shed"] == 0
        assert _wait_for(lambda: service.samples_total >= 16)
        status, document = _get(endpoint.url("/nodes"))
        assert status == 200
        assert [n["node"] for n in document["nodes"]] == ["n0"]
        assert document["fleet"]["power_w"]["sum"] > 0.0
        status, drill = _get(endpoint.url("/nodes/n0"))
        assert status == 200
        assert drill["n_samples"] == 16
        assert len(drill["history"]) == 16

    def test_unknown_node_and_route_404(self, served):
        _, endpoint, _ = served
        assert _get(endpoint.url("/nodes/ghost"))[0] == 404
        assert _get(endpoint.url("/no-such-route"))[0] == 404

    def test_bad_payload_400(self, served):
        _, endpoint, _ = served
        status, receipt = _post(endpoint.url("/ingest"), "{broken\n")
        assert status == 400
        assert receipt["errors"]

    def test_post_to_other_route_404(self, served):
        _, endpoint, _ = served
        assert _post(endpoint.url("/nodes"), "x")[0] == 404

    def test_shed_returns_429(self, suite, gcc_run):
        service = EstimationService(suite, shards=1, queue_depth=1)
        lines = frames_from_run(
            gcc_run, "n0", frame_samples=8, events=required_events(suite)
        )
        with ObservabilityServer(service=service, port=0) as endpoint:
            # Workers intentionally not started: the depth-1 queue fills
            # after one frame and the next POST must see backpressure.
            assert _post(endpoint.url("/ingest"), lines[0])[0] == 200
            status, receipt = _post(endpoint.url("/ingest"), lines[1])
            assert status == 429
            assert receipt["shed"] == 8

    def test_healthz_degrades_to_503_when_stale(self, served, suite, gcc_run):
        service, endpoint, clock = served
        # No truth on the wire: the toy suite is untrained, so truth
        # scoring would (correctly) flip health to "drifting" first.
        line = frames_from_run(
            gcc_run,
            "n0",
            frame_samples=16,
            events=required_events(suite),
            include_truth=False,
        )[0]
        service.ingest_inline(line)
        status, document = _get(endpoint.url("/healthz"))
        assert status == 200
        assert document["service"]["nodes_fresh"] == 1
        clock[0] += 60.0
        status, document = _get(endpoint.url("/healthz"))
        assert status == 503
        assert document["status"] == "stale"
        assert document["service"]["stale_nodes"] == ["n0"]

    def test_service_route_and_kill_shard_chaos_hook(self, suite):
        service = EstimationService(suite, shards=2)
        endpoint = ObservabilityServer(service=service, chaos=True, port=0)
        with service, endpoint:
            status, document = _get(endpoint.url("/service"))
            assert status == 200
            assert all(shard["alive"] for shard in document["shards"])
            # The retired GET query is inert: a scrape can't kill anything.
            status, document = _get(endpoint.url("/service?kill_shard=1"))
            assert status == 200
            assert all(shard["alive"] for shard in document["shards"])
            status, document = _post(
                endpoint.url("/service/kill_shard?shard=1"), ""
            )
            assert status == 200
            assert document["kill_shard"] == {
                "shard": 1,
                "killed": True,
                "alive": False,
            }
            assert service.dead_shards() == [1]
            # /healthz stays 200: degraded but serving.
            status, document = _get(endpoint.url("/healthz"))
            assert status == 200
            assert document["status"] == "degraded"
            assert _post(endpoint.url("/service/kill_shard?shard=99"), "")[0] == 400
            assert _post(endpoint.url("/service/kill_shard"), "")[0] == 400

    def test_kill_shard_requires_chaos_opt_in(self, served):
        service, endpoint, _ = served
        status, document = _post(endpoint.url("/service/kill_shard?shard=0"), "")
        assert status == 403
        assert "chaos" in document["error"]
        assert service.dead_shards() == []
        assert all(shard.alive for shard in service.shards)

    def test_partial_success_returns_200_with_receipt(
        self, served, suite, gcc_run
    ):
        """Accepted lines are already enqueued: a non-2xx would invite a
        whole-body retry that duplicates them, so anything-accepted is
        200 and clients resend from the receipt's counts."""
        service, endpoint, _ = served
        good = frames_from_run(
            gcc_run, "n0", frame_samples=8, events=required_events(suite)
        )[0]
        status, receipt = _post(endpoint.url("/ingest"), good + "\n{broken\n")
        assert status == 200
        assert receipt["accepted"] == 8
        assert len(receipt["errors"]) == 1
        assert _wait_for(lambda: service.samples_total >= 8)

    def test_slo_route_serves_burn_state(self, served):
        _, endpoint, _ = served
        status, document = _get(endpoint.url("/slo"))
        assert status == 200
        assert set(document["slos"]) == {"error", "freshness"}

    def test_routes_answer_empty_without_a_service(self):
        with ObservabilityServer(port=0) as endpoint:
            assert _get(endpoint.url("/nodes"))[1] == {"nodes": None}
            assert _get(endpoint.url("/service"))[1] == {"service": None}
            assert _get(endpoint.url("/slo"))[1] == {"slo": None}
            assert _post(endpoint.url("/ingest"), "x")[0] == 404
            assert _post(endpoint.url("/service/kill_shard?shard=0"), "")[0] == 404

    def test_address_in_use_raises_actionable_error(self):
        with ObservabilityServer(port=0) as first:
            second = ObservabilityServer(port=first.port)
            with pytest.raises(OSError) as excinfo:
                second.start()
            message = str(excinfo.value)
            assert f"cannot bind observability endpoint to 127.0.0.1:{first.port}" in message
            assert "--port 0" in message


# -- socket transport --------------------------------------------------


class TestSocketTransport:
    def test_line_protocol_with_acks(self, suite, gcc_run):
        lines = frames_from_run(
            gcc_run, "n0", frame_samples=16, events=required_events(suite)
        )[:2]
        with EstimationService(suite, shards=1, ops=False) as service:
            transport = LineSocketServer(service, port=0)
            port = transport.start()
            assert port != 0
            try:
                with socket.create_connection(("127.0.0.1", port), timeout=10.0) as conn:
                    stream = conn.makefile("rwb")
                    stream.write(b"?ack\n")
                    for line in lines:
                        stream.write(line.encode("utf-8") + b"\n")
                    stream.flush()
                    receipts = [json.loads(stream.readline()) for _ in lines]
                assert all(r["accepted"] == 16 for r in receipts)
                assert _wait_for(lambda: service.samples_total >= 32)
                assert service.node_document("n0")["n_samples"] == 32
            finally:
                transport.stop()

    def test_fire_and_forget_without_handshake(self, suite, gcc_run):
        line = frames_from_run(
            gcc_run, "n0", frame_samples=16, events=required_events(suite)
        )[0]
        with EstimationService(suite, shards=1, ops=False) as service:
            transport = LineSocketServer(service, port=0)
            port = transport.start()
            try:
                with socket.create_connection(("127.0.0.1", port), timeout=10.0) as conn:
                    conn.sendall(line.encode("utf-8") + b"\n")
                assert _wait_for(lambda: service.samples_total >= 16)
            finally:
                transport.stop()

    def test_oversize_line_rejected_and_connection_survives(self, suite, gcc_run):
        line = frames_from_run(
            gcc_run, "n0", frame_samples=4, events=required_events(suite)
        )[0]
        limit = 16384
        assert len(line) < limit
        with EstimationService(suite, shards=1, ops=False) as service:
            transport = LineSocketServer(service, port=0, max_line_bytes=limit)
            port = transport.start()
            try:
                with socket.create_connection(("127.0.0.1", port), timeout=10.0) as conn:
                    stream = conn.makefile("rwb")
                    stream.write(b"?ack\n")
                    # One huge junk line, then a valid frame: the junk
                    # must be drained and rejected without being
                    # buffered whole, and the frame must still land.
                    stream.write(b"x" * (3 * limit) + b"\n")
                    stream.write(line.encode("utf-8") + b"\n")
                    stream.flush()
                    first = json.loads(stream.readline())
                    second = json.loads(stream.readline())
                assert first["accepted"] == 0
                assert "exceeds" in first["errors"][0]
                assert second["accepted"] == 4
                assert _wait_for(lambda: service.samples_total >= 4)
            finally:
                transport.stop()

    def test_ingest_crash_answers_error_receipt_and_continues(
        self, suite, gcc_run, monkeypatch
    ):
        line = frames_from_run(
            gcc_run, "n0", frame_samples=4, events=required_events(suite)
        )[0]
        with EstimationService(suite, shards=1, ops=False) as service:
            real_ingest = service.ingest
            calls = {"n": 0}

            def flaky_ingest(data, transport="http"):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("injected ingest bug")
                return real_ingest(data, transport=transport)

            monkeypatch.setattr(service, "ingest", flaky_ingest)
            transport = LineSocketServer(service, port=0)
            port = transport.start()
            try:
                with socket.create_connection(("127.0.0.1", port), timeout=10.0) as conn:
                    stream = conn.makefile("rwb")
                    stream.write(b"?ack\n")
                    stream.write(line.encode("utf-8") + b"\n")
                    stream.write(line.encode("utf-8") + b"\n")
                    stream.flush()
                    first = json.loads(stream.readline())
                    second = json.loads(stream.readline())
                # The handler thread survived the first line's failure.
                assert first == {
                    "accepted": 0, "shed": 0, "errors": ["internal error"]
                }
                assert second["accepted"] == 4
            finally:
                transport.stop()


# -- windowed registry under wall-clock misbehaviour (satellite) -------


class TestWindowedRegistryWallClock:
    @staticmethod
    def _snap(value: float) -> dict:
        return {
            "counters": [{"name": "c", "labels": {}, "value": value}],
            "gauges": [],
            "histograms": [],
        }

    def test_out_of_order_timestamps_fold_into_newest_window(self):
        windows = WindowedRegistry(window_s=1.0)
        windows.ingest(0.2, self._snap(1.0))
        windows.ingest(1.2, self._snap(3.0))
        # The clock ran backwards: the delta must not open a window in
        # the past (or resurrect an old one) — it folds into the newest.
        windows.ingest(0.7, self._snap(6.0))
        document = windows.to_json(last=None)
        assert document["n_windows"] == 2
        first, second = document["windows"]
        assert first["counters"]["c"] == 1.0
        assert second["counters"]["c"] == 5.0

    def test_duplicate_timestamps_accumulate_in_one_window(self):
        windows = WindowedRegistry(window_s=2.0)
        windows.ingest(4.5, self._snap(2.0))
        windows.ingest(4.5, self._snap(7.0))
        document = windows.to_json(last=None)
        assert document["n_windows"] == 1
        assert document["windows"][0]["counters"]["c"] == 7.0

    def test_sample_exactly_on_boundary_opens_the_next_window(self):
        windows = WindowedRegistry(window_s=1.0)
        windows.ingest(1.9, self._snap(1.0))
        windows.ingest(2.0, self._snap(2.0))  # boundary belongs to [2, 3)
        document = windows.to_json(last=None)
        assert [w["start_s"] for w in document["windows"]] == [1.0, 2.0]
        assert document["windows"][1]["end_s"] == 3.0
        assert document["windows"][1]["counters"]["c"] == 1.0

    def test_clock_stall_then_jump_creates_no_gap_windows(self):
        windows = WindowedRegistry(window_s=1.0, max_windows=100)
        for t, v in ((5.0, 1.0), (5.3, 2.0), (5.9, 3.0)):  # stalled clock
            windows.ingest(t, self._snap(v))
        windows.ingest(42.7, self._snap(10.0))  # multi-window jump
        document = windows.to_json(last=None)
        # Two real windows — the 36 empty windows in between are never
        # materialised, so a stalled scraper cannot flood the ring.
        assert document["n_windows"] == 2
        assert [w["start_s"] for w in document["windows"]] == [5.0, 42.0]
        assert document["windows"][0]["counters"]["c"] == 3.0
        assert document["windows"][1]["counters"]["c"] == 7.0


# -- CLI (serve + satellites) ------------------------------------------


class TestServeCli:
    COMMON = ["--duration", "20", "--tick-ms", "50", "--seed", "7"]

    def test_taken_port_fails_fast_with_clear_error(self, capsys):
        from repro.cli import main

        # Squat on a port, then ask serve to bind it: the failure must
        # arrive before training starts, as exit 2 with the fix spelled
        # out — not a traceback.
        with socket.socket() as squatter:
            squatter.bind(("127.0.0.1", 0))
            squatter.listen(1)
            port = squatter.getsockname()[1]
            code = main(["serve", "--port", str(port), *self.COMMON])
        assert code == 2
        err = capsys.readouterr().err
        assert f"cannot bind observability endpoint to 127.0.0.1:{port}" in err
        assert "--port 0" in err
        assert "Traceback" not in err

    def test_port_zero_prints_bound_ephemeral_port(self, capsys):
        from repro.cli import main

        code = main(
            [
                "serve",
                "--replay",
                "gcc",
                "--nodes",
                "1",
                "--shards",
                "1",
                "--port",
                "0",
                "--refresh",
                "30",
                *self.COMMON,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        match = re.search(r"endpoint at http://127\.0\.0\.1:(\d+)", out)
        assert match, out
        assert int(match.group(1)) != 0  # the *bound* port, not the request
        assert "replay offered" in out
        assert "status=" in out


class TestObsCliQuantiles:
    def test_histogram_table_has_quantile_columns(self, tmp_path, capsys):
        """Satellite: ``repro-power obs`` renders p50/p95/p99 straight
        from the dumped bucket cells."""
        from repro.cli import main

        obs.enable()
        buckets = tuple(float(b) for b in range(1, 11))
        for value in (1.5, 2.5, 2.5, 3.5, 9.5):
            obs.observe("stage_demo_seconds", value, {"stage": "x"}, buckets)
        out = str(tmp_path / "tel")
        obs.dump(out)
        obs.disable()
        capsys.readouterr()
        assert main(["obs", out]) == 0
        printed = capsys.readouterr().out
        assert "stage_demo_seconds" in printed
        for column in ("p50", "p95", "p99"):
            assert column in printed
