"""Unit tests for RNG streams and system configuration."""

import pytest

from repro.simulator.config import SystemConfig, fast_config
from repro.simulator.rng import RngStreams, _stable_hash


class TestRngStreams:
    def test_same_seed_same_stream(self):
        a = RngStreams(42).stream("dram").standard_normal(8)
        b = RngStreams(42).stream("dram").standard_normal(8)
        assert (a == b).all()

    def test_different_names_differ(self):
        streams = RngStreams(42)
        a = streams.stream("dram").standard_normal(8)
        b = streams.stream("disk").standard_normal(8)
        assert not (a == b).all()

    def test_different_seeds_differ(self):
        a = RngStreams(1).stream("x").standard_normal(8)
        b = RngStreams(2).stream("x").standard_normal(8)
        assert not (a == b).all()

    def test_stream_is_cached(self):
        streams = RngStreams(7)
        assert streams.stream("x") is streams.stream("x")

    def test_stable_hash_is_deterministic(self):
        assert _stable_hash("memory") == _stable_hash("memory")
        assert _stable_hash("memory") != _stable_hash("disk")
        assert 0 <= _stable_hash("anything") < 2**32


class TestSystemConfig:
    def test_defaults_describe_the_paper_machine(self):
        config = SystemConfig()
        assert config.num_packages == 4
        assert config.cpu.smt_contexts == 2
        assert config.hardware_threads == 8
        assert config.disk.num_disks == 2

    def test_cycles_per_tick(self):
        config = SystemConfig()
        assert config.cycles_per_tick == pytest.approx(
            config.cpu.frequency_hz * config.tick_s
        )

    def test_fast_config_coarser_tick(self):
        assert fast_config().tick_s == pytest.approx(0.01)
        assert fast_config(0.005).tick_s == pytest.approx(0.005)

    def test_invalid_tick_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(tick_s=0.0)
        with pytest.raises(ValueError):
            SystemConfig(tick_s=2.0)  # longer than the sample period

    def test_invalid_package_count_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(num_packages=0)

    def test_idle_power_budget_matches_paper(self):
        """4 x halted packages + static domains ~= the paper's 141 W idle."""
        config = SystemConfig()
        idle_floor = (
            config.num_packages * config.cpu.halted_power_w
            + config.chipset.nominal_power_w
            + config.dram.background_power_w
            + config.io.static_power_w
            + config.disk.rotation_power_w * config.disk.num_disks
        )
        assert idle_floor == pytest.approx(139.0, abs=2.5)
