"""Fleet observability: vectorized drift monitoring vs N scalar monitors.

The tentpole guarantee: a :class:`FleetMonitor` +
:class:`FleetDriftMonitor` pair watching a width-W fleet produces per
lane the same window counts, EWMA states (to float round-off — the
batched design-matrix pass reassociates the matmul) and alert
transitions as W independent scalar :class:`LiveMonitor` +
:class:`DriftMonitor` pairs fed from per-lane scalar runs.  Seeded
per-lane mis-calibration must flag the offending lanes — and only
those — in ``/fleet/lanes`` and the flight bundle.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.estimator import SystemPowerEstimator
from repro.obs.drift import DriftMonitor
from repro.obs.fleet import (
    FleetDriftMonitor,
    FleetMonitor,
    LaneDriftAlert,
    publish_lane_aggregates,
)
from repro.obs.flight import FlightRecorder
from repro.obs.http import ObservabilityServer
from repro.obs.live import LiveMonitor
from repro.simulator.config import fast_config
from repro.simulator.fleet import FleetServer
from repro.simulator.system import Server
from repro.workloads.registry import get_workload
from tests.conftest import TEST_SEED

WIDTH = 6
N_TICKS = 2000  # ~20 sampler windows per lane at the fast config
PERTURBED_LANES = (1, 4)
PERTURB_FACTOR = 1.5

#: EWMA tolerance between the batched design-matrix pass and per-lane
#: single-sample estimation (matmul reassociation; everything upstream
#: of the estimate is bit-identical).
EWMA_RTOL = 1e-9


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _fleet_seeds():
    return [TEST_SEED + i for i in range(WIDTH)]


def _run_fleet(suite, workload, flight=None, perturb=True):
    fleet = FleetServer(
        fast_config(), get_workload(workload), _fleet_seeds()
    )
    monitor = FleetMonitor(suite, flight=flight)
    fleet.attach_fleet_monitor(monitor)
    if perturb:
        monitor.perturb_lanes(PERTURB_FACTOR, PERTURBED_LANES)
    fleet.run_ticks(N_TICKS)
    monitor.flush()
    return fleet, monitor


def _run_scalar_lane(suite, workload, seed, perturbed):
    server = Server(fast_config(), get_workload(workload), seed=seed)
    active = suite.scaled(PERTURB_FACTOR) if perturbed else suite
    monitor = LiveMonitor(
        SystemPowerEstimator(active), drift=DriftMonitor(max_history=1024)
    )
    server.attach_monitor(monitor)
    server.run_ticks(N_TICKS)
    return monitor


class TestScalarEquivalence:
    """The acceptance gate, property-tested across two workloads."""

    @pytest.mark.parametrize("workload", ["gcc", "SPECjbb"])
    def test_fleet_matches_per_lane_scalar_monitors(
        self, paper_suite, workload
    ):
        _, fleet_mon = _run_fleet(paper_suite, workload)
        drift = fleet_mon.drift
        streams = drift._streams
        assert list(streams) == [
            "cpu", "chipset", "memory", "io", "disk", "total"
        ]
        for lane, seed in enumerate(_fleet_seeds()):
            scalar = _run_scalar_lane(
                paper_suite, workload, seed, lane in PERTURBED_LANES
            )
            sdrift = scalar.drift
            # Window counts: exact.  The fleet pulses are the scalar
            # pulses, so every stream saw the same number of windows.
            assert fleet_mon.board.n_windows[lane] == scalar.n_windows
            for name, sstream in sdrift._streams.items():
                fstream = streams[name]
                assert int(fstream.windows[lane]) == sstream.windows
                # EWMA: identical to float round-off.
                assert float(fstream.ewma[lane]) == pytest.approx(
                    sstream.ewma, rel=EWMA_RTOL, abs=1e-12
                )
                # Firing state: exact.
                assert bool(fstream.firing[lane]) == sstream.firing
            # Transition sequences: same streams, states, window
            # indices and (bit-identical) simulation timestamps.
            fleet_lane_alerts = [
                a for a in drift.history() if a.lane == lane
            ]
            scalar_alerts = sdrift.history()
            assert [
                (a.subsystem, a.state, a.window) for a in fleet_lane_alerts
            ] == [
                (a.subsystem, a.state, a.window) for a in scalar_alerts
            ]
            for fa, sa in zip(fleet_lane_alerts, scalar_alerts):
                assert fa.timestamp_s == sa.timestamp_s
                assert fa.error_pct == pytest.approx(
                    sa.error_pct, rel=EWMA_RTOL, abs=1e-12
                )

    def test_only_perturbed_lanes_flagged(self, paper_suite):
        _, fleet_mon = _run_fleet(paper_suite, "gcc")
        assert fleet_mon.drift.firing_lanes() == PERTURBED_LANES
        # The worst offenders lead /fleet/lanes, and only they fire.
        doc = fleet_mon.lanes_document(top=len(PERTURBED_LANES))
        assert {entry["lane"] for entry in doc["lanes"]} == set(
            PERTURBED_LANES
        )
        for entry in doc["lanes"]:
            assert entry["firing"]
        full = fleet_mon.lanes_document()
        for entry in full["lanes"]:
            if entry["lane"] not in PERTURBED_LANES:
                assert entry["firing"] == []

    def test_unperturbed_fleet_stays_quiet(self, paper_suite):
        _, fleet_mon = _run_fleet(paper_suite, "gcc", perturb=False)
        assert fleet_mon.drift.firing == ()
        assert fleet_mon.drift.firing_lanes() == ()
        assert fleet_mon.n_windows >= WIDTH * 3

    def test_flight_bundle_names_offending_lane(self, paper_suite, tmp_path):
        flight = FlightRecorder(out_dir=str(tmp_path))
        _run_fleet(paper_suite, "gcc", flight=flight)
        firing = [
            f for f in flight.to_json()["bundles"]
        ]
        assert firing, "a perturbed lane should have dumped a bundle"
        from repro.obs.flight import load_bundle

        doc = load_bundle(firing[0])
        assert doc["reason"] == "drift.alert"
        assert doc["detail"]["lane"] in PERTURBED_LANES
        assert doc["detail"]["fleet"]["width"] == WIDTH
        assert doc["detail"]["lane_history"]
        assert set(doc["detail"]["fleet"]["firing_lanes"]) <= set(
            PERTURBED_LANES
        )


class TestFleetDriftMonitorUnit:
    """Bit-exact equivalence on synthetic feeds (no estimation noise)."""

    def test_bit_identical_to_scalar_monitors(self):
        width = 5
        rng = np.random.default_rng(TEST_SEED)
        fleet = FleetDriftMonitor(width, slo_pct=9.0)
        scalars = [DriftMonitor(slo_pct=9.0) for _ in range(width)]
        names = ["cpu", "memory", "disk"]
        for step in range(30):
            true = {n: 40.0 + 5.0 * rng.random(width) for n in names}
            # Drive lanes 1 and 3 over the SLO mid-run, then back.
            scale = np.ones(width)
            if 8 <= step < 20:
                scale[1] = 1.4
                scale[3] = 1.3
            est = {n: true[n] * scale for n in names}
            t = 1.0 + step
            fleet_alerts = fleet.observe(t, est, true)
            scalar_alerts = []
            for lane in range(width):
                got = scalars[lane].observe(
                    t,
                    {n: float(est[n][lane]) for n in names},
                    {n: float(true[n][lane]) for n in names},
                )
                scalar_alerts.extend(
                    (a.subsystem, lane, a.state, a.error_pct, a.window)
                    for a in got
                )
            assert sorted(
                (a.subsystem, a.lane, a.state, a.error_pct, a.window)
                for a in fleet_alerts
            ) == sorted(scalar_alerts)
        for lane in range(width):
            state = fleet.lane_state(lane)
            scalar = scalars[lane].to_json()["streams"]
            for name, cell in state.items():
                assert cell["error_pct"] == scalar[name]["error_pct"]
                assert cell["windows"] == scalar[name]["windows"]
                assert cell["firing"] == scalar[name]["firing"]
        # The perturbation window ended, so everything resolved — but
        # the history names exactly the lanes that were driven over.
        assert fleet.firing_lanes() == ()
        fired = {a.lane for a in fleet.history() if a.state == "firing"}
        assert fired == {1, 3}
        resolved = {a.lane for a in fleet.history() if a.state == "resolved"}
        assert resolved == {1, 3}

    def test_lane_subsets_update_independently(self):
        fleet = FleetDriftMonitor(4)
        scalar = DriftMonitor()
        # Lane 2 sees three windows via three separate subset calls.
        for t in (1.0, 2.0, 3.0):
            fleet.observe(
                t, {"cpu": [50.0]}, {"cpu": [40.0]}, lanes=np.array([2])
            )
            scalar.observe(t, {"cpu": 50.0}, {"cpu": 40.0})
        assert float(fleet.error_pct("cpu")[2]) == scalar.error_pct("cpu")
        # Untouched lanes have no state.
        assert np.isnan(fleet.error_pct("cpu")[0])
        assert fleet.lane_state(0)["cpu"]["windows"] == 0

    def test_param_validation(self):
        with pytest.raises(ValueError, match="width"):
            FleetDriftMonitor(0)
        with pytest.raises(ValueError, match="slo_pct"):
            FleetDriftMonitor(2, slo_pct=0.0)
        with pytest.raises(ValueError, match="alpha"):
            FleetDriftMonitor(2, alpha=1.5)
        with pytest.raises(ValueError, match="min_windows"):
            FleetDriftMonitor(2, min_windows=0)
        with pytest.raises(ValueError, match="resolve_ratio"):
            FleetDriftMonitor(2, resolve_ratio=0.0)
        with pytest.raises(IndexError):
            FleetDriftMonitor(2).lane_state(2)

    def test_alert_serialization_carries_lane(self):
        alert = LaneDriftAlert(
            subsystem="cpu",
            state="firing",
            error_pct=12.0,
            threshold_pct=9.0,
            timestamp_s=5.0,
            window=4,
            lane=3,
        )
        doc = alert.to_dict()
        assert doc["lane"] == 3
        assert doc["subsystem"] == "cpu"


class TestMonitoredFleetUnperturbedState:
    """The fleet monitor only reads: attaching one changes nothing."""

    def test_monitored_run_bit_identical_to_unmonitored(self, paper_suite):
        config = fast_config()
        workload = get_workload("gcc")
        plain = FleetServer(config, workload, _fleet_seeds())
        monitored = FleetServer(config, workload, _fleet_seeds())
        monitored.attach_fleet_monitor(FleetMonitor(paper_suite))
        plain_energy = plain.run_ticks(N_TICKS)
        monitored_energy = monitored.run_ticks(N_TICKS)
        assert np.array_equal(plain_energy, monitored_energy)
        for lane in range(WIDTH):
            assert (
                plain.lane(lane).counters._rows
                == monitored.lane(lane).counters._rows
            )
            assert (
                plain.lane(lane).energy._energy_j
                == monitored.lane(lane).energy._energy_j
            )


class TestAttachMonitorStacking:
    """Satellite: multi-monitor / all-lane attachment, range checks."""

    class _Recorder:
        def __init__(self):
            self.attached = []
            self.pulses = []

        def on_attach(self, server):
            self.attached.append(server)

        def on_window(self, server, pulse_s):
            self.pulses.append((server, pulse_s))

    def test_two_monitors_on_one_lane_both_fire(self):
        fleet = FleetServer(fast_config(), get_workload("gcc"), [1, 2])
        first, second = self._Recorder(), self._Recorder()
        fleet.attach_monitor(first, lane=0)
        fleet.attach_monitor(second, lane=0)
        fleet.run_ticks(300)
        assert first.pulses and second.pulses
        assert [p for _, p in first.pulses] == [p for _, p in second.pulses]

    def test_all_lane_attachment(self):
        fleet = FleetServer(fast_config(), get_workload("gcc"), [1, 2, 3])
        monitor = self._Recorder()
        fleet.attach_monitor(monitor, lane=None)
        assert len(monitor.attached) == 3
        fleet.run_ticks(300)
        seen_lanes = {view._lane for view, _ in monitor.pulses}
        assert seen_lanes == {0, 1, 2}

    def test_out_of_range_lane_raises(self):
        fleet = FleetServer(fast_config(), get_workload("gcc"), [1, 2])
        with pytest.raises(IndexError):
            fleet.attach_monitor(self._Recorder(), lane=2)
        with pytest.raises(IndexError):
            fleet.attach_monitor(self._Recorder(), lane=-1)
        with pytest.raises(IndexError):
            fleet.detach_monitor(lane=5)

    def test_detach_single_monitor(self):
        fleet = FleetServer(fast_config(), get_workload("gcc"), [1, 2])
        keep, drop = self._Recorder(), self._Recorder()
        fleet.attach_monitor(keep, lane=0)
        fleet.attach_monitor(drop, lane=0)
        fleet.detach_monitor(lane=0, monitor=drop)
        fleet.run_ticks(300)
        assert keep.pulses
        assert not drop.pulses

    def test_compat_mode_stacks_monitors_too(self):
        fleet = FleetServer(
            fast_config(), get_workload("gcc"), [1, 2], compat="scalar"
        )
        first, second = self._Recorder(), self._Recorder()
        fleet.attach_monitor(first, lane=1)
        fleet.attach_monitor(second, lane=1)
        fleet.run_ticks(300)
        assert first.pulses and second.pulses
        assert [p for _, p in first.pulses] == [p for _, p in second.pulses]

    def test_fleet_monitor_rejected_in_compat_mode(self, paper_suite):
        fleet = FleetServer(
            fast_config(), get_workload("gcc"), [1], compat="scalar"
        )
        with pytest.raises(NotImplementedError):
            fleet.attach_fleet_monitor(FleetMonitor(paper_suite))


class TestFleetRoutes:
    """The /fleet* routes, exercised through payload() (no sockets)."""

    def _served_monitor(self, paper_suite):
        _, monitor = _run_fleet(paper_suite, "gcc")
        return ObservabilityServer(
            drift=monitor.drift, windows=monitor.windows, fleet=monitor
        )

    def test_fleet_summary_route(self, paper_suite):
        import json

        endpoint = self._served_monitor(paper_suite)
        status, ctype, body = endpoint.payload("/fleet")
        assert status == 200 and ctype == "application/json"
        doc = json.loads(body)
        assert doc["width"] == WIDTH
        assert sorted(doc["firing_lanes"]) == sorted(PERTURBED_LANES)
        assert doc["power_w"]["true"]["min"] <= doc["power_w"]["true"]["max"]
        assert doc["alerts"]["firing"] >= len(PERTURBED_LANES)

    def test_lanes_route_with_top(self, paper_suite):
        import json

        endpoint = self._served_monitor(paper_suite)
        status, _, body = endpoint.payload("/fleet/lanes", "top=2")
        assert status == 200
        doc = json.loads(body)
        assert len(doc["lanes"]) == 2
        assert {e["lane"] for e in doc["lanes"]} == set(PERTURBED_LANES)
        status, _, _ = endpoint.payload("/fleet/lanes", "top=0")
        assert status == 400
        status, _, _ = endpoint.payload("/fleet/lanes", "top=junk")
        assert status == 400

    def test_lane_drilldown_route(self, paper_suite):
        import json

        endpoint = self._served_monitor(paper_suite)
        status, _, body = endpoint.payload(f"/fleet/lane/{PERTURBED_LANES[0]}")
        assert status == 200
        doc = json.loads(body)
        assert doc["lane"] == PERTURBED_LANES[0]
        assert doc["streams"]["total"]["firing"] is True
        assert doc["history"]
        assert endpoint.payload("/fleet/lane/999")[0] == 404
        assert endpoint.payload("/fleet/lane/zero")[0] == 404

    def test_routes_without_fleet_report_absence(self):
        import json

        endpoint = ObservabilityServer()
        for path in ("/fleet", "/fleet/lanes", "/fleet/lane/0"):
            status, _, body = endpoint.payload(path)
            assert status == 200
            assert json.loads(body) == {"fleet": None}

    def test_healthz_drifting_on_fleet_drift(self, paper_suite):
        import json

        endpoint = self._served_monitor(paper_suite)
        status, _, body = endpoint.payload("/healthz")
        assert status == 503
        doc = json.loads(body)
        assert doc["status"] == "drifting"
        assert any("[1]" in name for name in doc["firing"])

    def test_windows_last_paging(self, paper_suite):
        import json

        _, monitor = _run_fleet(paper_suite, "gcc")
        endpoint = ObservabilityServer(windows=monitor.windows)
        status, _, body = endpoint.payload("/windows", "last=1")
        assert status == 200
        doc = json.loads(body)
        assert len(doc["windows"]) == 1
        assert doc["n_windows"] >= 1
        full = json.loads(endpoint.payload("/windows")[2])
        assert len(full["windows"]) <= 12
        assert endpoint.payload("/windows", "last=0")[0] == 400
        assert endpoint.payload("/windows", "last=x")[0] == 400


class TestGaugeValueHelper:
    """Satellite: obs.gauge_value() complements obs.counter()."""

    def test_reads_published_gauges(self):
        obs.enable()
        obs.gauge("fleet_width", 64.0, {"workload": "gcc"})
        assert obs.gauge_value("fleet_width", {"workload": "gcc"}) == 64.0
        assert np.isnan(obs.gauge_value("fleet_width", {"workload": "mcf"}))
        assert np.isnan(obs.gauge_value("never_set"))


class TestPublishLaneAggregates:
    def test_aggregates_and_gauges(self):
        obs.enable()
        true = np.array([100.0, 200.0, np.nan, 300.0])
        est = np.array([110.0, 190.0, np.nan, 310.0])
        err = np.array([10.0, 5.0, np.nan, 3.3])
        out = publish_lane_aggregates("fleet", true, est, err)
        assert out["true"]["min"] == 100.0
        assert out["true"]["max"] == 300.0
        assert out["true"]["mean"] == pytest.approx(200.0)
        assert obs.gauge_value(
            "fleet_power_watts", {"agg": "max", "source": "true"}
        ) == 300.0
        assert obs.gauge_value(
            "fleet_error_pct", {"agg": "min"}
        ) == pytest.approx(3.3)

    def test_all_nan_publishes_nothing(self):
        out = publish_lane_aggregates("fleet", np.array([np.nan, np.nan]))
        assert out["true"] == {}
