"""Property-based tests (hypothesis) on core data structures and
simulator invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.events import Event
from repro.core.regression import fit_least_squares, polynomial_design
from repro.core.traces import CounterTrace
from repro.core.validation import average_error
from repro.counters.perfctr import CounterBank
from repro.osim.pagecache import PageCache
from repro.simulator.cache import MemoryTraffic, merge_traffic
from repro.simulator.config import (
    BusConfig,
    DiskConfig,
    DramConfig,
    IoConfig,
    OsConfig,
)
from repro.simulator.disk import DiskSubsystem
from repro.simulator.dma import DmaEngine
from repro.simulator.dram import DramSubsystem
from repro.simulator.membus import FrontSideBus

finite = st.floats(
    min_value=0.0, max_value=1.0e7, allow_nan=False, allow_infinity=False
)


class TestRegressionProperties:
    @given(
        coeffs=st.tuples(
            st.floats(-100.0, 100.0), st.floats(-10.0, 10.0), st.floats(-1.0, 1.0)
        ),
        xs=st.lists(st.floats(0.0, 50.0), min_size=8, max_size=40),
    )
    @settings(max_examples=50, deadline=None)
    def test_quadratic_fit_recovers_generating_coefficients(self, coeffs, xs):
        """Fitting noise-free data from the model family is exact."""
        x = np.asarray(xs)
        if np.ptp(x) < 1.0e-3:  # degenerate: no variation to identify slope
            return
        design = polynomial_design(x[:, None], 2)
        target = coeffs[0] + coeffs[1] * x + coeffs[2] * x**2
        fitted, diag = fit_least_squares(design, target)
        predicted = design @ fitted
        assert np.allclose(predicted, target, atol=1.0e-5 * max(1.0, np.abs(target).max()))

    @given(
        values=st.lists(st.floats(1.0, 1000.0), min_size=1, max_size=50),
        scale=st.floats(0.5, 2.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_average_error_scale_invariant(self, values, scale):
        """Eq. 6 is invariant to rescaling both series."""
        measured = np.asarray(values)
        modeled = measured * 1.07
        a = average_error(modeled, measured)
        b = average_error(modeled * scale, measured * scale)
        assert np.isclose(a, b)
        assert np.isclose(a, 7.0)


class TestCounterProperties:
    @given(
        counts=st.lists(
            st.lists(finite, min_size=3, max_size=3), min_size=1, max_size=30
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_counter_bank_conserves_counts(self, counts):
        """Sum of read_and_clear values equals the sum of all adds."""
        bank = CounterBank((Event.CYCLES,), 3)
        total = np.zeros(3)
        snapshots = []
        for row in counts:
            bank.add_all_cpus(Event.CYCLES, row)
            total += np.asarray(row)
            if len(snapshots) < 3:
                snapshots.append(bank.read_and_clear()[Event.CYCLES])
        snapshots.append(bank.read_and_clear()[Event.CYCLES])
        assert np.allclose(np.sum(snapshots, axis=0), total, rtol=1e-9)


class TestBusProperties:
    @given(
        demand=finite,
        prefetch=finite,
        snoops=finite,
    )
    @settings(max_examples=60, deadline=None)
    def test_grants_never_exceed_capacity(self, demand, prefetch, snoops):
        bus = FrontSideBus(BusConfig())
        tick = bus.tick(
            [MemoryTraffic(demand_load_misses=demand, prefetch_requests=prefetch)],
            snoops,
            0.01,
        )
        capacity = BusConfig().capacity_tx_per_s * 0.01
        assert tick.granted_transactions <= capacity * (1.0 + 1.0e-9)
        assert 0.0 <= tick.demand_ratio <= 1.0
        assert 0.0 <= tick.prefetch_ratio <= 1.0
        assert 0.0 <= tick.utilization <= 1.0
        assert tick.latency_cycles >= BusConfig().base_latency_cycles


class TestDramProperties:
    @given(
        reads=finite,
        writes=finite,
        streamability=st.floats(0.0, 1.0),
        streams=st.floats(1.0, 32.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_power_bounded_and_monotonic_floor(
        self, reads, writes, streamability, streams
    ):
        dram = DramSubsystem(DramConfig())
        tick = dram.tick(reads, writes, streamability, 0.0, 0.0, streams, 0.01)
        assert tick.power_w >= DramConfig().background_power_w - 1.0e-9
        assert tick.activations <= tick.reads + tick.writes + 1.0e-6
        assert 0.0 <= tick.row_hit_rate <= 1.0


class TestDiskProperties:
    @given(
        submissions=st.lists(
            st.tuples(
                st.floats(0.0, 5.0e6, allow_subnormal=False),
                st.floats(0.0, 5.0e6, allow_subnormal=False),
                st.booleans(),
            ),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_bytes_served_never_exceed_submitted(self, submissions):
        disk = DiskSubsystem(DiskConfig())
        submitted = 0.0
        served = 0.0
        for reads, writes, seq in submissions:
            disk.submit(reads, writes, write_sequential=seq)
            submitted += reads + writes
            served += disk.tick(0.01).served_bytes
        for _ in range(2000):
            served += disk.tick(0.01).served_bytes
        assert served <= submitted * (1.0 + 1.0e-9) + 1.0e-9
        assert served + disk.queued_bytes == np.float64(submitted).item() or (
            abs(served + disk.queued_bytes - submitted) < max(1.0, submitted) * 1e-6
        )

    @given(reads=st.floats(0.0, 1.0e7), writes=st.floats(0.0, 1.0e7))
    @settings(max_examples=40, deadline=None)
    def test_power_within_mode_envelope(self, reads, writes):
        config = DiskConfig()
        disk = DiskSubsystem(config)
        disk.submit(reads, writes)
        tick = disk.tick(0.01)
        floor = config.rotation_power_w * config.num_disks
        ceiling = floor + config.num_disks * (
            config.seek_power_w + config.transfer_power_w
        )
        assert floor - 1.0e-9 <= tick.power_w <= ceiling + 1.0e-9


class TestDmaProperties:
    @given(
        transfers=st.lists(
            st.tuples(st.floats(0.0, 1.0e6), st.floats(0.0, 1.0e6)),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_interrupt_count_matches_total_bytes(self, transfers):
        config = IoConfig()
        engine = DmaEngine(config)
        total_bytes = 0.0
        total_interrupts = 0
        for inbound, outbound in transfers:
            tick = engine.tick(inbound, outbound)
            total_bytes += inbound + outbound
            total_interrupts += tick.interrupts
        expected = total_bytes / config.bytes_per_interrupt
        assert abs(total_interrupts - expected) <= 1.0


class TestPageCacheProperties:
    @given(
        writes=st.lists(st.floats(0.0, 2.0e8), min_size=1, max_size=40),
        sync_at=st.integers(0, 39),
    )
    @settings(max_examples=30, deadline=None)
    def test_dirty_bytes_conserved(self, writes, sync_at):
        """written = drained-to-disk + still-dirty, always."""
        cache = PageCache(OsConfig())
        written = 0.0
        drained = 0.0
        for i, write_bps in enumerate(writes):
            if i == sync_at:
                cache.request_sync()
            request = cache.tick(write_bps, 0.0, 1.0, 0.01, 9.0e7)
            written += write_bps * 0.01
            drained += request.write_bytes
        assert np.isclose(written, drained + cache.dirty_bytes, rtol=1e-9, atol=1.0)
        assert cache.dirty_bytes >= 0.0


class TestTraceProperties:
    @given(
        n=st.integers(2, 20),
        n_cpus=st.integers(1, 8),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_slice_concat_identity(self, n, n_cpus, data):
        counts = data.draw(
            st.lists(
                st.lists(finite, min_size=n_cpus, max_size=n_cpus),
                min_size=n,
                max_size=n,
            )
        )
        trace = CounterTrace(
            timestamps=np.arange(1.0, n + 1.0),
            durations=np.ones(n),
            counts={Event.CYCLES: np.asarray(counts) + 1.0},
        )
        k = data.draw(st.integers(1, n - 1))
        left, right = trace.slice(0, k), trace.slice(k)
        rejoined = np.concatenate(
            [left.total(Event.CYCLES), right.total(Event.CYCLES)]
        )
        assert np.allclose(rejoined, trace.total(Event.CYCLES))
