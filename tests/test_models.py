"""Unit tests for model objects (core/models.py)."""

import numpy as np
import pytest

from repro.core.events import Event
from repro.core.features import FeatureSet
from repro.core.models import (
    ConstantModel,
    PolynomialModel,
    SubsystemPowerModel,
    linear_model,
    quadratic_model,
)
from repro.core.traces import CounterTrace


def synthetic_trace(n=40, n_cpus=2, seed=0):
    rng = np.random.default_rng(seed)
    cycles = np.full((n, n_cpus), 1.0e6)
    uops = rng.uniform(0.1, 1.0, (n, n_cpus)) * 1.0e6
    halted = rng.uniform(0.0, 0.5, (n, n_cpus)) * 1.0e6
    return CounterTrace(
        timestamps=np.arange(1.0, n + 1.0),
        durations=np.ones(n),
        counts={
            Event.CYCLES: cycles,
            Event.FETCHED_UOPS: uops,
            Event.HALTED_CYCLES: halted,
        },
    )


class TestConstantModel:
    def test_predicts_constant(self):
        model = ConstantModel(19.9)
        trace = synthetic_trace(n=7)
        assert np.allclose(model.predict(trace), 19.9)
        assert model.n_parameters == 1

    def test_fit_takes_mean(self):
        trace = synthetic_trace(n=5)
        power = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert ConstantModel.fit(trace, power).value == pytest.approx(3.0)

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            ConstantModel(float("nan"))

    def test_describe_mentions_value(self):
        assert "19.90" in ConstantModel(19.9).describe()


class TestPolynomialModel:
    def test_fit_recovers_planted_relation(self):
        trace = synthetic_trace()
        features = FeatureSet.of("active_fraction", "fetched_uops_per_cycle")
        matrix = features.matrix(trace)
        power = 37.0 + 26.45 * matrix[:, 0] + 4.31 * matrix[:, 1]
        model = PolynomialModel.fit(features, 1, trace, power)
        assert model.coefficients == pytest.approx([37.0, 26.45, 4.31], abs=1e-6)
        assert np.allclose(model.predict(trace), power)

    def test_quadratic_coefficient_layout(self):
        trace = synthetic_trace()
        features = FeatureSet.of("fetched_uops_per_cycle")
        matrix = features.matrix(trace)[:, 0]
        power = 28.0 + 3.43 * matrix + 7.66 * matrix**2
        model = PolynomialModel.fit(features, 2, trace, power)
        assert model.degree == 2
        assert model.coefficients == pytest.approx([28.0, 3.43, 7.66], abs=1e-6)

    def test_wrong_coefficient_count_rejected(self):
        features = FeatureSet.of("fetched_uops_per_cycle")
        with pytest.raises(ValueError, match="coefficients"):
            PolynomialModel(features, 1, np.ones(3))

    def test_bad_degree_rejected(self):
        features = FeatureSet.of("fetched_uops_per_cycle")
        with pytest.raises(ValueError, match="degree"):
            PolynomialModel(features, 3, np.ones(4))

    def test_describe_is_equation_like(self):
        trace = synthetic_trace()
        model = linear_model(
            trace, np.full(trace.n_samples, 40.0), "active_fraction"
        )
        text = model.describe()
        assert text.startswith("P = ")
        assert "active_fraction" in text

    def test_serialisation_round_trip(self):
        trace = synthetic_trace()
        model = quadratic_model(
            trace,
            40.0 + 2.0 * np.arange(trace.n_samples, dtype=float),
            "fetched_uops_per_cycle",
        )
        clone = SubsystemPowerModel.from_dict(model.to_dict())
        assert isinstance(clone, PolynomialModel)
        assert np.allclose(clone.predict(trace), model.predict(trace))

    def test_constant_serialisation_round_trip(self):
        clone = SubsystemPowerModel.from_dict(ConstantModel(5.0).to_dict())
        assert isinstance(clone, ConstantModel)
        assert clone.value == 5.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown model kind"):
            SubsystemPowerModel.from_dict({"kind": "mystery"})

    def test_diagnostics_attached_by_fit(self):
        trace = synthetic_trace()
        model = linear_model(
            trace, np.full(trace.n_samples, 40.0), "active_fraction"
        )
        assert model.diagnostics is not None
        assert model.diagnostics.n_samples == trace.n_samples


def _all_subclasses(cls):
    out = []
    for sub in cls.__subclasses__():
        out.append(sub)
        out.extend(_all_subclasses(sub))
    return out


#: One representative instance per concrete model class.  A new
#: subclass without an entry here fails the walk below — serialisation
#: coverage is opt-out, not opt-in.
_MODEL_FACTORIES = {
    "ConstantModel": lambda: ConstantModel(19.9),
    "PolynomialModel": lambda: PolynomialModel(
        FeatureSet.of("active_fraction", "fetched_uops_per_cycle"),
        degree=2,
        coefficients=[35.0, 20.0, 5.0, 1.0, 0.5],
    ),
}


class TestEveryModelRoundTrips:
    def test_every_subclass_has_a_factory(self):
        names = {cls.__name__ for cls in _all_subclasses(SubsystemPowerModel)}
        assert names == set(_MODEL_FACTORIES), (
            "add a factory for new SubsystemPowerModel subclasses so their "
            "to_dict/from_dict round trip is covered"
        )

    @pytest.mark.parametrize("name", sorted(_MODEL_FACTORIES))
    def test_round_trip_preserves_predictions_and_dict(self, name):
        model = _MODEL_FACTORIES[name]()
        trace = synthetic_trace()
        data = model.to_dict()
        clone = SubsystemPowerModel.from_dict(data)
        assert type(clone) is type(model)
        assert clone.to_dict() == data
        assert np.allclose(clone.predict(trace), model.predict(trace))
        # Attribution survives too: same terms, same per-term watts.
        original = model.attribute(trace)
        revived = clone.attribute(trace)
        assert set(revived) == set(original)
        for term, watts in original.items():
            assert np.allclose(revived[term], watts)
