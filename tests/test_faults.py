"""Fault-tolerance tests: the sweep engine under injected failure.

The contract under test is strong: a sweep disturbed by worker
crashes, per-task exceptions, timeouts, torn cache files or a mid-run
parent kill must end up with runs **bit-identical** to an undisturbed
serial sweep — fault tolerance may change the execution path, never
the data.  Faults are injected deterministically through
:mod:`repro.exec.faults`.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from types import SimpleNamespace

import pytest

import repro
from repro import obs
from repro.exec import (
    FaultInjected,
    FaultPlan,
    RetryPolicy,
    RunCache,
    SweepError,
    SweepSpec,
    TearingCache,
    run_spec,
    sweep_specs,
)
from repro.exec.faults import FAULT_PLAN_ENV, PARENT_KILL_EXIT
from repro.simulator.config import SystemConfig, fast_config

from tests.test_exec import _assert_runs_identical

DURATION_S = 15.0

#: Fast policy so retry tests do not sleep through real backoff.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay=0.01)


@pytest.fixture(scope="module")
def specs() -> "list[SweepSpec]":
    # A stray fault plan in the environment would disturb every sweep
    # in this module; the tests pass plans explicitly instead.
    os.environ.pop(FAULT_PLAN_ENV, None)
    config = fast_config()
    return [
        SweepSpec(workload=name, seed=7, duration_s=DURATION_S, config=config)
        for name in ("idle", "gcc", "DiskLoad")
    ]


@pytest.fixture(scope="module")
def reference(specs):
    """The undisturbed serial sweep every fault run must reproduce."""
    return sweep_specs(specs, n_workers=1).runs


def _assert_all_identical(reference, runs) -> None:
    assert len(reference) == len(runs)
    for ref, run in zip(reference, runs):
        _assert_runs_identical(ref, run)


class TestRetryPolicy:
    def test_backoff_doubles_and_caps(self):
        policy = RetryPolicy(base_delay=0.1, max_delay_s=0.5)
        assert policy.delay_s(1) == pytest.approx(0.1)
        assert policy.delay_s(2) == pytest.approx(0.2)
        assert policy.delay_s(3) == pytest.approx(0.4)
        assert policy.delay_s(4) == pytest.approx(0.5)
        assert policy.delay_s(10) == pytest.approx(0.5)

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestFaultPlan:
    def test_env_round_trip(self, monkeypatch):
        plan = FaultPlan(fail={1: 2}, kill={0: 1}, hang={2: 1}, hang_s=3.0,
                         exit_parent_after=4)
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_env())
        loaded = FaultPlan.from_env()
        assert loaded == plan

    def test_from_env_absent_and_malformed(self, monkeypatch):
        monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(FAULT_PLAN_ENV, "{not json")
        assert FaultPlan.from_env() is None  # warns, never crashes a sweep
        monkeypatch.setenv(FAULT_PLAN_ENV, "{}")
        assert FaultPlan.from_env() is None  # empty plan == no plan

    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(11, 20, fail_rate=0.5, kill_rate=0.3)
        b = FaultPlan.seeded(11, 20, fail_rate=0.5, kill_rate=0.3)
        assert a == b
        assert a.fail or a.kill  # 20 indices at these rates hit something
        assert all(0 <= i < 20 for i in {*a.fail, *a.kill})

    def test_injected_exception_counts_attempts(self):
        plan = FaultPlan(fail={0: 2})
        with pytest.raises(FaultInjected):
            plan.apply_in_process(0, 0)
        with pytest.raises(FaultInjected):
            plan.apply_in_process(0, 1)
        plan.apply_in_process(0, 2)  # third attempt passes
        plan.apply_in_process(1, 0)  # other specs untouched


class TestFaultRecovery:
    def test_task_exception_retries_to_identical_result(self, specs, reference):
        result = sweep_specs(
            specs, n_workers=2, retry=FAST_RETRY, faults=FaultPlan(fail={1: 1})
        )
        assert result.retries >= 1
        assert not result.failed
        _assert_all_identical(reference, result.runs)

    def test_worker_kill_recovers_bit_identical(self, specs, reference):
        result = sweep_specs(
            specs, n_workers=2, retry=FAST_RETRY, faults=FaultPlan(kill={0: 1})
        )
        assert result.worker_failures >= 1
        assert not result.degraded
        _assert_all_identical(reference, result.runs)

    def test_unrecoverable_pool_degrades_to_serial(self, specs, reference):
        """A worker that dies on every attempt can never finish in the
        pool; the sweep must fall back to in-process execution (where
        kill faults cannot reach) and still produce identical runs."""
        result = sweep_specs(
            specs,
            n_workers=2,
            retry=FAST_RETRY,
            faults=FaultPlan(kill={i: 99 for i in range(len(specs))}),
        )
        assert result.degraded
        assert result.worker_failures >= 1
        assert not result.failed
        _assert_all_identical(reference, result.runs)

    def test_timeout_fault_retries_to_identical_result(self, specs, reference):
        result = sweep_specs(
            specs,
            n_workers=2,
            retry=RetryPolicy(max_attempts=3, base_delay=0.01, timeout_s=1.0),
            faults=FaultPlan(hang={0: 1}, hang_s=3.0),
        )
        assert result.retries >= 1
        assert not result.failed
        _assert_all_identical(reference, result.runs)

    def test_serial_execution_ignores_kill_faults(self, specs, reference):
        result = sweep_specs(
            specs, n_workers=1, retry=FAST_RETRY, faults=FaultPlan(kill={0: 99})
        )
        assert result.worker_failures == 0
        _assert_all_identical(reference, result.runs)

    def test_retry_exhaustion_raises_with_partial_result(self, specs):
        policy = RetryPolicy(max_attempts=2, base_delay=0.01)
        faults = FaultPlan(fail={2: 99})
        with pytest.raises(SweepError) as excinfo:
            sweep_specs(specs, n_workers=2, retry=policy, faults=faults)
        assert "DiskLoad" in str(excinfo.value)
        assert 2 in excinfo.value.result.failed

    def test_allow_partial_reports_failed_specs(self, specs, reference):
        result = sweep_specs(
            specs,
            n_workers=2,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01),
            faults=FaultPlan(fail={2: 99}),
            allow_partial=True,
        )
        assert set(result.failed) == {2}
        assert "FaultInjected" in result.failed[2]
        assert result.runs[2] is None
        for i in (0, 1):
            _assert_runs_identical(reference[i], result.runs[i])

    def test_retry_counters_and_events_in_telemetry(self, specs, reference):
        """Each fault kind surfaces through its own counter and a
        ``sweep.retry`` trace event (kill and fail injected in separate
        sweeps: a worker death can pre-empt a queued task's injected
        exception, which would make a combined assertion racy)."""
        obs.enable()
        obs.reset()
        try:
            result = sweep_specs(
                specs, n_workers=2, retry=FAST_RETRY, faults=FaultPlan(kill={0: 1})
            )
            assert obs.counter("sweep_worker_failures_total") >= 1
            kinds = {
                e["attrs"].get("kind")
                for e in obs.tracer().events_copy()
                if e["name"] == "sweep.retry"
            }
            assert "worker_death" in kinds
            _assert_all_identical(reference, result.runs)

            obs.reset()
            result = sweep_specs(
                specs, n_workers=2, retry=FAST_RETRY, faults=FaultPlan(fail={1: 1})
            )
            assert obs.counter("sweep_retries_total") >= 1
            kinds = {
                e["attrs"].get("kind")
                for e in obs.tracer().events_copy()
                if e["name"] == "sweep.retry"
            }
            assert "exception" in kinds
            _assert_all_identical(reference, result.runs)
        finally:
            obs.disable()
            obs.reset()

    def test_failed_attempt_leaves_errored_span(self, specs):
        """A retried serial attempt records a ``sweep.run_spec`` span
        tagged with the exception type (workers lose their snapshot
        with the crash, so only in-process attempts surface here)."""
        obs.enable()
        obs.reset()
        try:
            sweep_specs(
                specs[:1], n_workers=1, retry=FAST_RETRY,
                faults=FaultPlan(fail={0: 1}),
            )
            errored = [
                e
                for e in obs.tracer().events_copy()
                if e["name"] == "sweep.run_spec"
                and e["attrs"].get("error") == "FaultInjected"
            ]
            assert len(errored) == 1
        finally:
            obs.disable()
            obs.reset()


class TestCheckpointResume:
    def test_completed_runs_survive_a_failed_sweep(
        self, specs, reference, tmp_path
    ):
        """Specs that completed before a permanent failure are already
        checkpointed; re-running with the same cache resumes from them
        and produces identical runs."""
        cache = RunCache(str(tmp_path))
        first = sweep_specs(
            specs,
            n_workers=1,
            cache=cache,
            retry=RetryPolicy(max_attempts=2, base_delay=0.01),
            faults=FaultPlan(fail={2: 99}),
            allow_partial=True,
        )
        assert set(first.failed) == {2}
        stored = [n for n in os.listdir(tmp_path) if n.startswith("run-")]
        assert len(stored) == 2  # the completed specs, checkpointed

        resumed = sweep_specs(specs, n_workers=2, cache=RunCache(str(tmp_path)))
        assert resumed.cache_stats_hits == 2
        assert resumed.simulated == [2]
        assert not resumed.failed
        _assert_all_identical(reference, resumed.runs)

    def test_cli_kill_and_resume_cycle(self, tmp_path):
        """``repro-power sweep`` killed mid-run (hard parent exit after
        the first checkpoint) must resume to runs bit-identical to an
        uninterrupted sweep."""
        cache_dir = tmp_path / "cache"
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = {
            **os.environ,
            "PYTHONPATH": src_dir + os.pathsep + os.environ.get("PYTHONPATH", ""),
        }
        env.pop("REPRO_CACHE_DIR", None)
        env.pop(FAULT_PLAN_ENV, None)
        base_cmd = [
            sys.executable, "-m", "repro.cli", "sweep", "idle,gcc",
            "--duration", str(DURATION_S), "--cache-dir", str(cache_dir),
            "--workers", "1",
        ]

        killed = subprocess.run(
            base_cmd,
            env={**env, FAULT_PLAN_ENV: json.dumps({"exit_parent_after": 1})},
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert killed.returncode == PARENT_KILL_EXIT, killed.stderr
        stored = [n for n in os.listdir(cache_dir) if n.startswith("run-")]
        assert len(stored) == 1  # died after the first checkpoint

        resumed = subprocess.run(
            base_cmd + ["--resume"],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert resumed.returncode == 0, resumed.stderr
        assert "resuming — 1/2" in resumed.stdout

        # The CLI context: 10 ms tick, seed 7, 3 warmup windows.
        cache = RunCache(str(cache_dir))
        config = SystemConfig(tick_s=0.01)
        for name in ("idle", "gcc"):
            spec = SweepSpec(
                workload=name,
                seed=7,
                duration_s=DURATION_S,
                config=config,
                warmup_windows=3,
            )
            cached = cache.load(spec.key())
            assert cached is not None
            _assert_runs_identical(run_spec(spec), cached)


class TestTornFiles:
    def test_torn_run_file_is_a_miss_and_heals(self, specs, tmp_path):
        spec = specs[0]
        cache = TearingCache(str(tmp_path), tear_next_runs=1)
        run = run_spec(spec)
        cache.store(spec.key(), run)  # write lands, then tears
        assert cache.load(spec.key()) is None  # torn file == miss
        cache.store(spec.key(), run)  # tear budget spent: heals
        loaded = cache.load(spec.key())
        assert loaded is not None
        _assert_runs_identical(run, loaded)

    def test_sweep_through_tearing_cache_still_identical(
        self, specs, reference, tmp_path
    ):
        cache = TearingCache(str(tmp_path), tear_next_runs=1)
        first = sweep_specs(specs, n_workers=1, cache=cache)
        _assert_all_identical(reference, first.runs)
        # One checkpoint was torn; the next sweep re-simulates exactly
        # that spec and heals the entry.
        second = sweep_specs(specs, n_workers=1, cache=cache)
        assert len(second.simulated) == 1
        _assert_all_identical(reference, second.runs)
        third = sweep_specs(specs, n_workers=1, cache=cache)
        assert third.simulated == []
        _assert_all_identical(reference, third.runs)

    def test_torn_index_starts_fresh_without_losing_runs(
        self, specs, tmp_path
    ):
        spec = specs[0]
        cache = TearingCache(str(tmp_path), tear_next_index=1)
        run = run_spec(spec)
        cache.store(spec.key(), run)  # index torn right after this write
        assert cache.index() == {}  # unreadable -> fresh (warned)
        loaded = cache.load(spec.key())  # run files are untouched
        assert loaded is not None
        other = specs[1]
        cache.store(other.key(), run_spec(other))
        assert other.key() in cache.index()  # index rebuilt


class TestSatelliteRegressions:
    def test_stats_survive_index_write_failure(self, specs, tmp_path):
        """An ``OSError`` during the index write must keep the deltas
        unflushed — the old code advanced ``_flushed`` first and lost
        them forever."""
        spec = specs[0]
        cache = RunCache(str(tmp_path))
        cache.store(spec.key(), run_spec(spec))
        assert cache.load(spec.key()) is not None
        assert cache.stats.hits == 1

        def boom(index):
            raise OSError("disk full")

        cache._write_index = boom  # instance-level patch
        cache.persist_stats()  # warns; must NOT discard the hit delta
        assert cache._flushed.hits == 0
        del cache._write_index
        cache.persist_stats()
        assert RunCache(str(tmp_path)).lifetime_stats().hits == 1

    def test_index_add_survives_unserialisable_metadata(self, tmp_path):
        """``json.dump`` raising ``TypeError`` on odd run metadata must
        log a warning, not crash a sweep whose simulation succeeded."""
        cache = RunCache(str(tmp_path))
        os.makedirs(cache.root, exist_ok=True)
        stub = SimpleNamespace(
            workload="x",
            n_samples=1,
            duration_s=1.0,
            metadata={"base_seed": {1, 2}},  # a set: not JSON-serialisable
        )
        cache._index_add("f" * 64, stub)  # must not raise
        leftovers = [n for n in os.listdir(tmp_path) if n.endswith(".tmp")]
        assert leftovers == []

    def test_duplicate_specs_allowed_via_sweep_specs(self, specs):
        """``sweep_specs`` (list-in, list-out) is the documented path
        for repeated runs of one workload — nothing collapses."""
        doubled = [specs[0], specs[0]]
        result = sweep_specs(doubled, n_workers=1)
        assert len(result.runs) == 2
        _assert_runs_identical(result.runs[0], result.runs[1])
