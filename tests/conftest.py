"""Shared fixtures: short simulated runs and a trained suite.

Simulation is the expensive part of this test suite, so runs are
session-scoped and kept short (coarse 10 ms tick, 150 s of simulated
time).  Model-quality assertions in the integration tests are bounded
loosely enough to hold at this fidelity.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.training import ModelTrainer
from repro.simulator.config import SystemConfig, fast_config
from repro.simulator.system import simulate_workload
from repro.workloads.registry import get_workload

TEST_SEED = 123
TRAIN_DURATION_S = 150.0

#: Session flight recorder (only when ``REPRO_FLIGHT_DIR`` is set, as
#: in CI): failed tests become notes, and a failing session dumps a
#: post-mortem bundle the workflow uploads as an artifact.
_FLIGHT = None


def pytest_configure(config) -> None:
    global _FLIGHT
    out_dir = os.environ.get("REPRO_FLIGHT_DIR")
    if not out_dir:
        return
    from repro.obs import flight

    _FLIGHT = flight.FlightRecorder(out_dir=out_dir)
    flight.set_global(_FLIGHT)


def pytest_runtest_logreport(report) -> None:
    if _FLIGHT is not None and report.failed:
        _FLIGHT.note(
            "test failed", nodeid=report.nodeid, when=report.when
        )


def pytest_sessionfinish(session, exitstatus) -> None:
    if _FLIGHT is not None and exitstatus not in (0, 5):  # 5 = no tests
        _FLIGHT.trigger(
            "ci.tests_failed", detail={"exitstatus": int(exitstatus)}
        )


@pytest.fixture(scope="session")
def config() -> SystemConfig:
    return fast_config()


def _run(name: str, duration_s: float, config: SystemConfig):
    return simulate_workload(
        get_workload(name), duration_s=duration_s, seed=TEST_SEED, config=config
    ).drop_warmup(2)


@pytest.fixture(scope="session")
def idle_run(config):
    return _run("idle", 60.0, config)


@pytest.fixture(scope="session")
def gcc_run(config):
    return _run("gcc", TRAIN_DURATION_S, config)


@pytest.fixture(scope="session")
def mcf_run(config):
    # mcf staggers 8 threads 30 s apart; run past full load so its
    # speculation-driven CPU underestimation (the paper's worst case)
    # is present in the trace.
    return _run("mcf", 260.0, config)


@pytest.fixture(scope="session")
def diskload_run(config):
    return _run("DiskLoad", TRAIN_DURATION_S, config)


@pytest.fixture(scope="session")
def mesa_run(config):
    return _run("mesa", TRAIN_DURATION_S, config)


@pytest.fixture(scope="session")
def training_runs(idle_run, gcc_run, mcf_run, diskload_run, mesa_run):
    return {
        "idle": idle_run,
        "gcc": gcc_run,
        "mcf": mcf_run,
        "DiskLoad": diskload_run,
        "mesa": mesa_run,
    }


@pytest.fixture(scope="session")
def paper_suite(training_runs):
    return ModelTrainer().train(training_runs)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(TEST_SEED)
