"""Fleet/scalar equivalence: the SoA core against the reference Server.

The vectorized :class:`FleetServer` claims lane ``i`` reproduces
``Server(config, workload, seeds[i])`` exactly for counters and energy
(elementwise ufuncs are element-independent; order-sensitive reductions
stay sequential per lane), with one tolerance-bounded exception: the
DAQ's sinusoidal gain drift uses ``np.sin`` where the scalar path uses
``math.sin``.  These tests pin both halves of that contract, plus the
integrations that ride on it (cluster engine, sweep lane-grouping).
"""

import numpy as np
import pytest

from repro.cluster import Cluster, PowerAwareManager, StaticManager, diurnal_demand
from repro.core.events import Subsystem
from repro.exec import SweepSpec, sweep_specs
from repro.simulator.config import fast_config
from repro.simulator.fleet import FleetServer, simulate_fleet
from repro.simulator.system import Server, simulate_workload
from repro.workloads.registry import get_workload

SEED = 11
N_TICKS = 300

#: Documented epsilon for the one reordered measurement path (DAQ
#: drift via np.sin); everything else is asserted bit-exact.
DAQ_RTOL = 1e-9
DAQ_ATOL = 1e-12


def _scalar_rows(server):
    return server.counters._rows


def _assert_lane_matches_server(view, server, exact_power=True):
    """Counters, energy account and process stats of one lane vs Server."""
    assert view.now_s == server.now_s
    assert _scalar_rows(view) == _scalar_rows(server)
    for subsystem in Subsystem:
        assert view.energy._energy_j[subsystem] == server.energy._energy_j[subsystem]
    assert set(view.process_stats) == set(server.process_stats)
    for k, stats in server.process_stats.items():
        lane_stats = view.process_stats[k]
        assert lane_stats.runtime_s == stats.runtime_s
        assert lane_stats.executed_uops == stats.executed_uops
        assert lane_stats.fetched_uops == stats.fetched_uops
        assert lane_stats.bus_transactions == stats.bus_transactions
    assert view.sampler.n_samples == server.sampler.n_samples


class TestCompatScalarMode:
    def test_every_lane_bit_identical(self):
        """compat="scalar" runs real Servers: exact on every surface."""
        config = fast_config()
        workload = get_workload("gcc")
        seeds = [SEED + i for i in range(3)]
        fleet = FleetServer(config, workload, seeds, compat="scalar")
        servers = [Server(config, workload, seed=s) for s in seeds]
        fleet_energy = fleet.run_ticks(N_TICKS)
        for lane, server in enumerate(servers):
            assert fleet_energy[lane] == server.run_ticks(N_TICKS)
            _assert_lane_matches_server(fleet.lane(lane), server)

    def test_compat_run_power_bit_identical(self):
        """Full measured runs (DAQ included) are exact in compat mode."""
        runs = simulate_fleet(
            get_workload("gcc"), 40.0, seeds=(5,), config=fast_config(),
            compat="scalar",
        )
        reference = simulate_workload(
            get_workload("gcc"), 40.0, seed=5, config=fast_config()
        )
        run = runs[0]
        for subsystem in run.power.subsystems:
            assert np.array_equal(
                run.power.power(subsystem), reference.power.power(subsystem)
            )

    def test_compat_validated(self):
        with pytest.raises(ValueError, match="compat"):
            FleetServer(fast_config(), get_workload("gcc"), [1], compat="simd")


class TestVectorLaneEquivalence:
    def test_every_lane_matches_its_scalar_server(self):
        """Default (vector) mode: counters/energy exact per lane."""
        config = fast_config()
        workload = get_workload("SPECjbb")
        seeds = [SEED + i for i in range(4)]
        fleet = FleetServer(config, workload, seeds)
        fleet_energy = fleet.run_ticks(N_TICKS)
        for lane, seed in enumerate(seeds):
            server = Server(config, workload, seed=seed)
            assert fleet_energy[lane] == server.run_ticks(N_TICKS)
            _assert_lane_matches_server(fleet.lane(lane), server)

    @pytest.mark.parametrize("workload", ["gcc", "mcf", "DiskLoad", "idle"])
    def test_lane0_bit_identity_across_workloads(self, workload):
        """The acceptance gate: lane 0 reproduces Server.run_ticks."""
        config = fast_config()
        spec = get_workload(workload)
        fleet = FleetServer(config, spec, [SEED, SEED + 1])
        server = Server(config, spec, seed=SEED)
        assert fleet.run_ticks(N_TICKS)[0] == server.run_ticks(N_TICKS)
        _assert_lane_matches_server(fleet.lane(0), server)

    def test_measured_run_tolerance_bounded(self):
        """simulate_fleet vs simulate_workload: counters exact, DAQ
        power within the documented np.sin/math.sin epsilon."""
        seeds = (5, 9)
        runs = simulate_fleet(
            get_workload("gcc"), 40.0, seeds=seeds, config=fast_config()
        )
        for run, seed in zip(runs, seeds):
            reference = simulate_workload(
                get_workload("gcc"), 40.0, seed=seed, config=fast_config()
            )
            assert run.seed == reference.seed
            assert run.metadata["base_seed"] == seed
            for event in reference.counters.events:
                assert np.array_equal(
                    run.counters.per_cpu(event),
                    reference.counters.per_cpu(event),
                )
            for subsystem in reference.power.subsystems:
                assert np.allclose(
                    run.power.power(subsystem),
                    reference.power.power(subsystem),
                    rtol=DAQ_RTOL,
                    atol=DAQ_ATOL,
                )

    def test_lane_out_of_range(self):
        fleet = FleetServer(fast_config(), get_workload("gcc"), [1, 2])
        with pytest.raises(IndexError):
            fleet.lane(2)


class TestRngStreamIndependence:
    def test_lane_trace_unchanged_by_fleet_width(self):
        """Lane i's results depend on seeds[i] only, not on the width."""
        config = fast_config()
        workload = get_workload("SPECjbb")
        narrow = FleetServer(config, workload, [SEED, SEED + 7])
        wide = FleetServer(
            config, workload, [SEED + 3, SEED + 7, SEED + 1, SEED + 4, SEED + 9]
        )
        narrow_energy = narrow.run_ticks(N_TICKS)
        wide_energy = wide.run_ticks(N_TICKS)
        # seeds[1] of the narrow fleet == seeds[1] of the wide fleet
        assert narrow_energy[1] == wide_energy[1]
        assert _scalar_rows(narrow.lane(1)) == _scalar_rows(wide.lane(1))
        for subsystem in Subsystem:
            assert (
                narrow.lane(1).energy._energy_j[subsystem]
                == wide.lane(1).energy._energy_j[subsystem]
            )


class _RecordingMonitor:
    """Minimal live monitor: records every window pulse it sees."""

    def __init__(self):
        self.attached = None
        self.pulses = []

    def on_attach(self, server):
        self.attached = server

    def on_window(self, server, pulse_s):
        self.pulses.append(
            (pulse_s, server.sampler.n_samples, sum(server.energy._energy_j.values()))
        )


class TestMonitoredRunIdentity:
    def test_fleet_monitor_sees_scalar_pulses(self):
        """attach_monitor on lane 0 fires the same windows, same state,
        as the same monitor attached to the scalar Server."""
        config = fast_config()
        workload = get_workload("gcc")

        server = Server(config, workload, seed=SEED)
        scalar_monitor = _RecordingMonitor()
        server.attach_monitor(scalar_monitor)
        server.run_ticks(N_TICKS)

        fleet = FleetServer(config, workload, [SEED, SEED + 1])
        fleet_monitor = _RecordingMonitor()
        fleet.attach_monitor(fleet_monitor, lane=0)
        fleet.run_ticks(N_TICKS)

        assert fleet_monitor.attached is not None
        assert fleet_monitor.pulses  # windows actually closed
        assert fleet_monitor.pulses == scalar_monitor.pulses

    def test_monitored_run_bit_identical_to_unmonitored(self):
        """The monitor only reads: attaching one changes nothing."""
        config = fast_config()
        workload = get_workload("gcc")
        plain = FleetServer(config, workload, [SEED, SEED + 1])
        monitored = FleetServer(config, workload, [SEED, SEED + 1])
        monitored.attach_monitor(_RecordingMonitor(), lane=0)
        plain_energy = plain.run_ticks(N_TICKS)
        monitored_energy = monitored.run_ticks(N_TICKS)
        assert np.array_equal(plain_energy, monitored_energy)
        assert _scalar_rows(plain.lane(0)) == _scalar_rows(monitored.lane(0))


class TestClusterEngineEquivalence:
    @pytest.mark.parametrize(
        "manager_factory",
        [StaticManager, lambda: PowerAwareManager(headroom_threads=6)],
        ids=["static", "power-aware"],
    )
    def test_fleet_engine_bit_exact(self, manager_factory):
        demand = diurnal_demand(
            45, peak_threads=14, trough_threads=2, period_s=60.0, seed=5
        )
        scalar = Cluster(n_nodes=3, seed=123, engine="scalar").run(
            demand, manager_factory()
        )
        fleet = Cluster(n_nodes=3, seed=123, engine="fleet").run(
            demand, manager_factory()
        )
        assert scalar.demand == fleet.demand
        assert scalar.served == fleet.served
        assert scalar.nodes_on == fleet.nodes_on
        assert scalar.power_w == fleet.power_w
        assert scalar.node_power_w == fleet.node_power_w

    def test_engine_validated(self):
        with pytest.raises(ValueError, match="engine"):
            Cluster(n_nodes=2, engine="warp")


class TestSweepFleetGrouping:
    def test_grouped_lanes_match_per_spec_path(self):
        specs = [
            SweepSpec(
                workload="gcc", seed=s, duration_s=20.0, config=fast_config()
            )
            for s in (3, 4, 5)
        ]
        # A singleton group: must fall through to the per-spec path.
        specs.append(
            SweepSpec(workload="idle", seed=3, duration_s=20.0, config=fast_config())
        )
        grouped = sweep_specs(specs, n_workers=1)
        reference = sweep_specs(specs, n_workers=1, fleet="off")
        assert len(grouped.runs) == len(reference.runs)
        for fleet_run, scalar_run in zip(grouped.runs, reference.runs):
            assert fleet_run.workload == scalar_run.workload
            assert fleet_run.seed == scalar_run.seed
            assert fleet_run.metadata == scalar_run.metadata
            for event in scalar_run.counters.events:
                assert np.array_equal(
                    fleet_run.counters.per_cpu(event),
                    scalar_run.counters.per_cpu(event),
                )
            for subsystem in scalar_run.power.subsystems:
                assert np.allclose(
                    fleet_run.power.power(subsystem),
                    scalar_run.power.power(subsystem),
                    rtol=DAQ_RTOL,
                    atol=DAQ_ATOL,
                )

    def test_warmup_windows_applied_in_fleet_path(self):
        full = sweep_specs(
            [SweepSpec(workload="gcc", seed=3, duration_s=20.0, config=fast_config())],
            n_workers=1,
        )
        trimmed = sweep_specs(
            [
                SweepSpec(
                    workload="gcc",
                    seed=s,
                    duration_s=20.0,
                    config=fast_config(),
                    warmup_windows=3,
                )
                for s in (3, 4)
            ],
            n_workers=1,
        )
        assert all(
            run.n_samples == full.runs[0].n_samples - 3 for run in trimmed.runs
        )

    def test_fleet_mode_validated(self):
        with pytest.raises(ValueError, match="fleet"):
            sweep_specs(
                [SweepSpec(workload="gcc", seed=3, duration_s=20.0)],
                fleet="sometimes",
            )
