"""End-to-end reproduction tests: train on measured runs, validate, and
assert the paper's qualitative results (error bands and failure modes).

Bounds are loose because the session fixtures run short (150 s) coarse
(10 ms tick) simulations; the benchmark harness exercises the paper's
full configuration.
"""

import numpy as np
import pytest

from repro.core.events import Subsystem
from repro.core.training import L3_MEMORY_RECIPE, ModelTrainer
from repro.core.validation import average_error, validate_suite


class TestPaperSuiteAccuracy:
    def test_subsystem_error_bands(self, paper_suite, training_runs):
        """Average errors stay inside (a loosened version of) the
        paper's 'less than 9 % per subsystem' headline."""
        report = validate_suite(paper_suite, training_runs)
        assert report.subsystem_average(Subsystem.CPU) < 12.0
        assert report.subsystem_average(Subsystem.MEMORY) < 15.0
        assert report.subsystem_average(Subsystem.CHIPSET) < 15.0
        assert report.subsystem_average(Subsystem.IO) < 3.0
        assert report.subsystem_average(Subsystem.DISK) < 3.0

    def test_io_and_disk_are_the_easy_subsystems(self, paper_suite, training_runs):
        """High idle power + low variation = tiny relative errors."""
        report = validate_suite(paper_suite, training_runs)
        io_error = report.subsystem_average(Subsystem.IO)
        disk_error = report.subsystem_average(Subsystem.DISK)
        cpu_error = report.subsystem_average(Subsystem.CPU)
        assert io_error < cpu_error
        assert disk_error < cpu_error

    def test_mcf_is_the_cpu_worst_case_among_compute_workloads(
        self, paper_suite, training_runs
    ):
        """Fetch-based CPU model is worst on mcf (paper: 12.3 %).

        At test fidelity the comparison is restricted to the pure
        compute workloads; the benchmark harness reproduces the full
        Table 3 ranking at paper-scale run lengths.
        """
        report = validate_suite(paper_suite, training_runs)
        compute = ("idle", "gcc", "mesa", "mcf")
        errors = {w: report.errors[w][Subsystem.CPU] for w in compute}
        assert max(errors, key=errors.get) == "mcf"
        assert errors["mcf"] > 3.0

    def test_cpu_model_underestimates_mcf(self, paper_suite, mcf_run):
        modeled = paper_suite.predict(Subsystem.CPU, mcf_run.counters)
        measured = mcf_run.power.power(Subsystem.CPU)
        # Look at the loaded portion (last third of the staggered run).
        n = len(measured) // 3
        assert modeled[-n:].mean() < measured[-n:].mean()

    def test_total_system_power_within_ten_percent(
        self, paper_suite, training_runs
    ):
        for run in training_runs.values():
            total_modeled = paper_suite.predict_total(run.counters)
            total_measured = run.power.total()
            assert average_error(total_modeled, total_measured) < 10.0


class TestMemoryModelAblation:
    """Section 4.2.2: L3 misses work on mesa, fail on mcf; bus
    transactions fix mcf."""

    def test_l3_model_works_on_mesa(self, training_runs):
        suite = ModelTrainer(L3_MEMORY_RECIPE).train(training_runs)
        run = training_runs["mesa"]
        error = average_error(
            suite.predict(Subsystem.MEMORY, run.counters),
            run.power.power(Subsystem.MEMORY),
        )
        assert error < 3.0

    def test_l3_model_fails_on_mcf_by_underestimating(self, training_runs):
        suite = ModelTrainer(L3_MEMORY_RECIPE).train(training_runs)
        run = training_runs["mcf"]
        modeled = suite.predict(Subsystem.MEMORY, run.counters)
        measured = run.power.power(Subsystem.MEMORY)
        error = average_error(modeled, measured)
        n = len(measured) // 3
        assert error > 1.0
        assert modeled[-n:].mean() < measured[-n:].mean()

    def test_bus_model_beats_l3_model_on_mcf(self, paper_suite, training_runs):
        l3_suite = ModelTrainer(L3_MEMORY_RECIPE).train(training_runs)
        run = training_runs["mcf"]
        measured = run.power.power(Subsystem.MEMORY)
        bus_error = average_error(
            paper_suite.predict(Subsystem.MEMORY, run.counters), measured
        )
        l3_error = average_error(
            l3_suite.predict(Subsystem.MEMORY, run.counters), measured
        )
        assert bus_error < l3_error


class TestFigureTraces:
    def test_cpu_trace_tracks_gcc_ramp(self, paper_suite, gcc_run):
        """Figure 2: the model follows the staggered staircase."""
        modeled = paper_suite.predict(Subsystem.CPU, gcc_run.counters)
        measured = gcc_run.power.power(Subsystem.CPU)
        assert average_error(modeled, measured) < 8.0
        # Correlated in time, not merely equal on average.
        assert np.corrcoef(modeled, measured)[0, 1] > 0.98

    def test_disk_trace_error_small(self, paper_suite, diskload_run):
        """Figure 6 quotes 1.75 % after DC adjustment; raw is tighter."""
        modeled = paper_suite.predict(Subsystem.DISK, diskload_run.counters)
        measured = diskload_run.power.power(Subsystem.DISK)
        assert average_error(modeled, measured) < 2.0

    def test_io_trace_error_small(self, paper_suite, diskload_run):
        """Figure 7: < 1 % raw error for the interrupt I/O model."""
        modeled = paper_suite.predict(Subsystem.IO, diskload_run.counters)
        measured = diskload_run.power.power(Subsystem.IO)
        assert average_error(modeled, measured) < 2.5

    def test_io_model_captures_sync_variation(self, paper_suite, diskload_run):
        modeled = paper_suite.predict(Subsystem.IO, diskload_run.counters)
        measured = diskload_run.power.power(Subsystem.IO)
        assert np.corrcoef(modeled, measured)[0, 1] > 0.9
