"""Tests for the extension subsystems: NIC, thermal model, DVFS,
automated event selection."""

import numpy as np
import pytest

from repro.core.events import Event, Subsystem
from repro.core.features import PAPER_FEATURES, get_feature
from repro.core.selection import EventSelector
from repro.core.regression import RegressionError
from repro.osim.process import ThreadActivity
from repro.osim.scheduler import PackageLoad
from repro.simulator.config import CacheConfig, CpuConfig, IoConfig, PState, fast_config
from repro.simulator.cpu import CpuPackage
from repro.simulator.nic import NicConfig, NicDevice
from repro.simulator.system import Server, simulate_workload
from repro.simulator.thermal import (
    DEFAULT_THERMAL_PARAMS,
    RcThermalModel,
    ThermalParams,
    ThermalSensor,
    detection_lead_s,
)
from repro.workloads.base import PhaseBehavior
from repro.workloads.registry import get_workload


@pytest.fixture(scope="module")
def netload_run():
    return simulate_workload(
        get_workload("netload"), duration_s=150.0, seed=77, config=fast_config()
    ).drop_warmup(2)


class TestNic:
    def test_line_rate_cap(self):
        nic = NicDevice(NicConfig(line_rate_bps=1.0e6), IoConfig())
        tick = nic.tick(rx_bps=10.0e6, tx_bps=10.0e6, dt_s=0.01)
        assert tick.served_rx_bytes == pytest.approx(1.0e4)
        assert tick.served_tx_bytes == pytest.approx(1.0e4)

    def test_dma_direction_mapping(self):
        nic = NicDevice(NicConfig(), IoConfig())
        tick = nic.tick(rx_bps=6.4e4, tx_bps=0.0, dt_s=1.0)
        # Received packets land in memory: DRAM writes.
        assert tick.dma.dram_writes == pytest.approx(1000.0)
        assert tick.dma.dram_reads == 0.0

    def test_interrupt_coalescing(self):
        config = NicConfig()
        nic = NicDevice(config, IoConfig())
        interrupts = 0
        for _ in range(100):
            interrupts += nic.tick(config.bytes_per_interrupt * 50, 0.0, 0.01).dma.interrupts
        assert interrupts == pytest.approx(50, abs=1)

    def test_negative_rate_rejected(self):
        nic = NicDevice(NicConfig(), IoConfig())
        with pytest.raises(ValueError):
            nic.tick(-1.0, 0.0, 0.01)

    def test_netload_raises_io_power_and_network_interrupts(self, netload_run):
        assert netload_run.power.mean(Subsystem.IO) > 33.5
        assert netload_run.counters.rate(Event.NETWORK_INTERRUPTS).mean() > 100.0
        # Network traffic produces DMA visible on the bus.
        assert netload_run.counters.total(Event.DMA_ACCESSES).mean() > 0.0

    def test_netload_leaves_disk_idle(self, netload_run):
        disk_irq = netload_run.counters.rate(Event.DISK_INTERRUPTS).mean()
        net_irq = netload_run.counters.rate(Event.NETWORK_INTERRUPTS).mean()
        assert net_irq > 10.0 * max(disk_irq, 1.0)

    def test_network_interrupts_are_trickle_down_feature(self):
        feature = get_feature("network_interrupts_per_mcycle")
        assert feature.is_trickle_down


class TestThermalModel:
    def test_settle_matches_steady_state(self):
        model = RcThermalModel()
        model.settle({Subsystem.CPU: 40.0})
        params = DEFAULT_THERMAL_PARAMS[Subsystem.CPU]
        assert model.temperature_c(Subsystem.CPU) == pytest.approx(
            params.steady_state_c(40.0, model.ambient_c)
        )

    def test_step_converges_to_steady_state(self):
        model = RcThermalModel()
        for _ in range(5000):
            model.step({Subsystem.CPU: 30.0}, 0.1)
        params = DEFAULT_THERMAL_PARAMS[Subsystem.CPU]
        assert model.temperature_c(Subsystem.CPU) == pytest.approx(
            params.steady_state_c(30.0, model.ambient_c), abs=0.1
        )

    def test_time_constant_behaviour(self):
        """After one tau, ~63% of the step is reached."""
        params = ThermalParams(1.0, 10.0)  # tau = 10 s
        model = RcThermalModel({Subsystem.CPU: params}, ambient_c=0.0)
        steps = 100
        for _ in range(steps):
            model.step({Subsystem.CPU: 10.0}, 10.0 / steps)
        assert model.temperature_c(Subsystem.CPU) == pytest.approx(
            10.0 * (1.0 - np.exp(-1.0)), rel=0.01
        )

    def test_exact_integration_is_step_size_invariant(self):
        coarse = RcThermalModel()
        fine = RcThermalModel()
        for _ in range(10):
            coarse.step({Subsystem.CPU: 45.0}, 1.0)
        for _ in range(1000):
            fine.step({Subsystem.CPU: 45.0}, 0.01)
        assert coarse.temperature_c(Subsystem.CPU) == pytest.approx(
            fine.temperature_c(Subsystem.CPU), rel=1e-9
        )

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            ThermalParams(0.0, 10.0)
        with pytest.raises(ValueError):
            RcThermalModel().step({}, 0.0)

    def test_unknown_subsystem_raises(self):
        model = RcThermalModel({Subsystem.CPU: ThermalParams(1.0, 1.0)})
        with pytest.raises(KeyError):
            model.temperature_c(Subsystem.DISK)


class TestThermalSensor:
    def test_quantisation(self):
        sensor = ThermalSensor(resolution_c=2.0, period_s=1.0)
        assert sensor.read(53.4, 0.0) == pytest.approx(54.0)

    def test_holds_between_samples(self):
        sensor = ThermalSensor(resolution_c=1.0, period_s=5.0)
        first = sensor.read(40.0, 0.0)
        held = sensor.read(90.0, 2.0)  # before the next sampling point
        assert held == first
        updated = sensor.read(90.0, 5.0)
        assert updated == pytest.approx(90.0)

    def test_detection_lead_computation(self):
        times = np.arange(10.0)
        power = np.where(times >= 2.0, 100.0, 10.0)
        temp = np.where(times >= 7.0, 60.0, 30.0)
        t_power, t_temp = detection_lead_s(times, power, temp, 50.0, 50.0)
        assert t_power == 2.0
        assert t_temp == 7.0

    def test_detection_lead_none_when_never_crossed(self):
        times = np.arange(5.0)
        flat = np.full(5, 1.0)
        t_power, t_temp = detection_lead_s(times, flat, flat, 50.0, 50.0)
        assert t_power is None and t_temp is None


class TestDvfs:
    def make_package(self):
        return CpuPackage(0, CpuConfig(), CacheConfig())

    def run_tick(self, package):
        activity = ThreadActivity(
            0, PhaseBehavior(uops_per_cycle=2.0), 1.0, 1.0, False, "t"
        )
        load = PackageLoad(0, [activity])
        return package.tick(load, 0.7, 320.0, 320.0, 0.0, 0.01)

    def test_default_pstate_is_nominal(self):
        package = self.make_package()
        assert package.pstate_index == 0
        assert package.frequency_hz == CpuConfig().frequency_hz

    def test_lower_pstate_reduces_cycles_and_power(self):
        package = self.make_package()
        nominal = self.run_tick(package)
        nominal_power = package.power(nominal)
        package.set_pstate(2)
        scaled = self.run_tick(package)
        assert scaled.cycles < nominal.cycles
        assert scaled.executed_uops < nominal.executed_uops
        assert package.power(scaled) < nominal_power * 0.6

    def test_power_scales_superlinearly_with_frequency(self):
        """V^2*f: halving frequency cuts power by much more than half."""
        package = self.make_package()
        p0 = package.power(self.run_tick(package))
        package.set_pstate(3)  # 0.6 GHz = 0.4x frequency
        p3 = package.power(self.run_tick(package))
        assert p3 < p0 * 0.4

    def test_invalid_pstate_rejected(self):
        package = self.make_package()
        with pytest.raises(ValueError):
            package.set_pstate(99)
        with pytest.raises(ValueError):
            package.set_pstate(-1)

    def test_invalid_pstate_definition_rejected(self):
        with pytest.raises(ValueError):
            PState(0.0, 1.0)
        with pytest.raises(ValueError):
            PState(1.0e9, 2.0)

    def test_server_level_dvfs(self):
        config = fast_config()
        server = Server(config, get_workload("mesa"), seed=3)
        for _ in range(200):
            server.tick()
        nominal = server.energy.mean_power_w(Subsystem.CPU)

        throttled_server = Server(config, get_workload("mesa"), seed=3)
        throttled_server.set_all_pstates(2)
        for _ in range(200):
            throttled_server.tick()
        throttled = throttled_server.energy.mean_power_w(Subsystem.CPU)
        assert throttled < nominal * 0.75

    def test_counters_reflect_frequency(self):
        config = fast_config()
        server = Server(config, get_workload("idle"), seed=3)
        server.set_pstate(0, 2)  # one package at 0.9 GHz
        server.tick()
        cycles = server.counters.peek(Event.CYCLES)
        assert cycles[0] == pytest.approx(0.9e9 * config.tick_s)
        assert cycles[1] == pytest.approx(1.5e9 * config.tick_s)


class TestEventSelector:
    def test_selects_bus_transactions_for_memory(self, mcf_run, training_runs):
        selector = EventSelector(max_features=2)
        result = selector.select(
            Subsystem.MEMORY, mcf_run, list(training_runs.values())
        )
        assert result.selected_names[0] == "bus_transactions_per_mcycle"
        assert result.final_error_pct < 5.0

    def test_selects_io_induced_event_for_io(self, diskload_run, training_runs):
        """The winner is an event from the DMA/interrupt family — the
        paper's Section 4.2.4 candidate set.  (Which one wins between
        interrupts and DMA accesses is fidelity-dependent at short test
        runs; the full-length ablation bench shows interrupts ahead.)"""
        selector = EventSelector(max_features=1)
        result = selector.select(
            Subsystem.IO, diskload_run, list(training_runs.values())
        )
        winner = result.selected_names[0]
        assert "interrupts" in winner or "dma" in winner
        assert result.final_error_pct < 2.0

    def test_stops_when_gain_too_small(self, diskload_run, training_runs):
        selector = EventSelector(max_features=5, min_gain_pct=50.0)
        result = selector.select(
            Subsystem.DISK, diskload_run, list(training_runs.values())
        )
        assert len(result.steps) == 1  # nothing can improve by 50 points

    def test_rejects_local_event_candidates(self):
        from repro.core.features import rate

        with pytest.raises(ValueError, match="local"):
            EventSelector(candidates=[rate(Event.DRAM_READS)])

    def test_describe_lists_steps(self, diskload_run, training_runs):
        selector = EventSelector(max_features=2)
        result = selector.select(
            Subsystem.DISK, diskload_run, list(training_runs.values())
        )
        text = result.describe()
        assert "greedy selection" in text
        assert result.selected_names[0] in text

    def test_validation_required(self, diskload_run):
        selector = EventSelector()
        with pytest.raises(ValueError):
            selector.select(Subsystem.DISK, diskload_run, [])

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EventSelector(degree=3)
        with pytest.raises(ValueError):
            EventSelector(max_features=0)
        with pytest.raises(ValueError):
            EventSelector(min_gain_pct=-1.0)
