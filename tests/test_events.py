"""Unit tests for the event taxonomy (core/events.py)."""

from repro.core.events import (
    Event,
    LOCAL_EVENTS,
    SUBSYSTEMS,
    Subsystem,
    TRICKLE_DOWN_EVENTS,
    TRICKLE_DOWN_PATHS,
    is_trickle_down,
    render_propagation_diagram,
)


def test_five_subsystems_in_paper_order():
    assert SUBSYSTEMS == (
        Subsystem.CPU,
        Subsystem.CHIPSET,
        Subsystem.MEMORY,
        Subsystem.IO,
        Subsystem.DISK,
    )


def test_trickle_down_and_local_partition_all_events():
    assert TRICKLE_DOWN_EVENTS | LOCAL_EVENTS == frozenset(Event)
    assert not TRICKLE_DOWN_EVENTS & LOCAL_EVENTS


def test_paper_selection_is_trickle_down():
    for event in (
        Event.CYCLES,
        Event.HALTED_CYCLES,
        Event.FETCHED_UOPS,
        Event.L3_MISSES,
        Event.TLB_MISSES,
        Event.DMA_ACCESSES,
        Event.BUS_TRANSACTIONS,
        Event.UNCACHEABLE_ACCESSES,
        Event.INTERRUPTS,
    ):
        assert is_trickle_down(event)


def test_local_events_are_not_trickle_down():
    for event in (Event.DRAM_READS, Event.DISK_SEEK_TIME, Event.IO_BYTES):
        assert not is_trickle_down(event)


def test_propagation_paths_use_trickle_down_sources():
    for event, targets in TRICKLE_DOWN_PATHS:
        assert is_trickle_down(event)
        assert targets, f"{event} propagates to at least one subsystem"
        for subsystem in targets:
            assert isinstance(subsystem, Subsystem)


def test_every_non_cpu_subsystem_is_reachable():
    reachable = {s for _, targets in TRICKLE_DOWN_PATHS for s in targets}
    assert reachable >= {
        Subsystem.MEMORY,
        Subsystem.CHIPSET,
        Subsystem.IO,
        Subsystem.DISK,
    }


def test_diagram_mentions_every_trickle_down_event():
    diagram = render_propagation_diagram()
    for event in TRICKLE_DOWN_EVENTS:
        assert event.value in diagram


def test_event_string_round_trip():
    for event in Event:
        assert Event(event.value) is event
    for subsystem in Subsystem:
        assert Subsystem(subsystem.value) is subsystem
