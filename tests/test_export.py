"""Tests for CSV export/import of measured runs."""

import numpy as np
import pytest

from repro.analysis.export import run_from_csv, run_to_csv
from repro.core.events import Event, Subsystem


class TestCsvRoundTrip:
    def test_round_trip_preserves_everything(self, idle_run, tmp_path):
        path = str(tmp_path / "idle.csv")
        run_to_csv(idle_run, path)
        clone = run_from_csv(path)
        assert clone.workload == idle_run.workload
        assert clone.seed == idle_run.seed
        assert clone.n_samples == idle_run.n_samples
        assert np.allclose(
            clone.counters.timestamps, idle_run.counters.timestamps, atol=1e-5
        )
        for event in idle_run.counters.events:
            assert np.allclose(
                clone.counters.per_cpu(event),
                idle_run.counters.per_cpu(event),
                rtol=1e-5,
            ), event
        for subsystem in Subsystem:
            assert np.allclose(
                clone.power.power(subsystem),
                idle_run.power.power(subsystem),
                atol=1e-5,
            )

    def test_models_work_on_reimported_trace(self, paper_suite, gcc_run, tmp_path):
        path = str(tmp_path / "gcc.csv")
        run_to_csv(gcc_run, path)
        clone = run_from_csv(path)
        original = paper_suite.predict_total(gcc_run.counters)
        reimported = paper_suite.predict_total(clone.counters)
        assert np.allclose(original, reimported, rtol=1e-4)

    def test_header_carries_all_cpus(self, idle_run, tmp_path):
        path = str(tmp_path / "run.csv")
        run_to_csv(idle_run, path)
        with open(path, encoding="utf-8") as handle:
            handle.readline()
            header = handle.readline()
        for cpu in range(idle_run.counters.n_cpus):
            assert f"ev:cycles:cpu{cpu}" in header
        assert "pw:cpu" in header and "pw:disk" in header

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("# workload=x seed=0\ntimestamp_s,duration_s\n")
        with pytest.raises(ValueError, match="no data rows"):
            run_from_csv(str(path))
