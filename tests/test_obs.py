"""Tests for ``repro.obs``: metrics, tracing, and the telemetry paths.

The contracts under test: registry merging is associative (so worker
snapshots can be folded in any grouping), histograms honour Prometheus
``le`` bucket semantics, spans nest and land in the JSONL log in
completion order, the disabled path records nothing at all, and a
parallel sweep's aggregated registry equals the serial run's over every
deterministic metric.
"""

from __future__ import annotations

import json
import logging
import os

import pytest

from repro import obs
from repro.exec import RunCache, SweepSpec, sweep_specs
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.simulator.config import fast_config
from repro.simulator.system import Server
from repro.workloads.registry import get_workload

DURATION_S = 20.0


@pytest.fixture(autouse=True)
def clean_obs():
    """Telemetry is process-global; every test starts and ends clean."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _specs(names, **overrides):
    kwargs = dict(seed=5, duration_s=DURATION_S, config=fast_config())
    kwargs.update(overrides)
    return [SweepSpec(workload=name, **kwargs) for name in names]


class TestMetricsRegistry:
    def test_counter_gauge_histogram_basics(self):
        reg = MetricsRegistry()
        reg.inc("requests_total")
        reg.inc("requests_total", 2.0)
        reg.inc("requests_total", 1.0, {"route": "a"})
        reg.gauge("depth", 4.0)
        reg.gauge("depth", 7.0)  # last write wins
        reg.observe("latency_seconds", 0.02)
        assert reg.counters[("requests_total", ())] == 3.0
        assert reg.counters[("requests_total", (("route", "a"),))] == 1.0
        assert reg.gauges[("depth", ())] == 7.0
        assert reg.histograms[("latency_seconds", ())].count == 1

    def test_counters_cannot_decrease(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("requests_total", -1.0)

    def test_histogram_bucket_edges_are_le_inclusive(self):
        hist = Histogram((1.0, 5.0, 10.0))
        for value in (0.5, 1.0, 1.01, 5.0, 9.99, 10.0, 11.0, 1000.0):
            hist.observe(value)
        # value <= edge lands in that edge's bucket (Prometheus ``le``).
        assert hist.counts == [2, 2, 2, 2]
        assert hist.count == 8
        assert hist.sum == pytest.approx(0.5 + 1.0 + 1.01 + 5.0 + 9.99 + 10.0 + 11.0 + 1000.0)

    def test_histogram_edges_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(())

    def test_mismatched_bucket_merge_rejected(self):
        a, b = Histogram((1.0,)), Histogram((2.0,))
        with pytest.raises(ValueError):
            a.merge(b)

    def _sample_registry(self, counter, gauge, hist_value):
        reg = MetricsRegistry()
        reg.inc("c_total", counter)
        reg.inc("c_total", counter, {"k": "v"})
        reg.gauge("g", gauge)
        reg.observe("h_seconds", hist_value, buckets=(0.1, 1.0, 10.0))
        return reg

    def test_merge_is_associative(self):
        """(a + b) + c == a + (b + c) for every metric kind."""
        parts = [
            self._sample_registry(1.0, 10.0, 0.05),
            self._sample_registry(2.0, 20.0, 0.5),
            self._sample_registry(4.0, 30.0, 5.0),
        ]
        snaps = [p.snapshot() for p in parts]

        left = MetricsRegistry.from_snapshot(snaps[0])
        left.merge_snapshot(snaps[1])
        left.merge_snapshot(snaps[2])

        bc = MetricsRegistry.from_snapshot(snaps[1])
        bc.merge_snapshot(snaps[2])
        right = MetricsRegistry.from_snapshot(snaps[0])
        right.merge(bc)

        assert left.snapshot() == right.snapshot()
        assert left.counters[("c_total", ())] == 7.0
        assert left.gauges[("g", ())] == 30.0  # right-biased
        assert left.histograms[("h_seconds", ())].count == 3

    def test_snapshot_round_trip(self):
        reg = self._sample_registry(3.0, 9.0, 0.2)
        clone = MetricsRegistry.from_snapshot(reg.snapshot())
        assert clone.snapshot() == reg.snapshot()

    def test_prometheus_exposition(self):
        reg = self._sample_registry(2.0, 5.0, 0.5)
        text = reg.to_prometheus()
        assert "# TYPE c_total counter" in text
        assert 'c_total{k="v"} 2' in text
        assert "# TYPE g gauge" in text
        assert "# TYPE h_seconds histogram" in text
        assert 'h_seconds_bucket{le="1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text

    def test_prometheus_help_lines(self):
        reg = MetricsRegistry()
        reg.inc("c_total", 1.0, help="Things counted.")
        reg.gauge("g", 2.0)
        reg.describe("g", "A gauge.")
        lines = reg.to_prometheus().splitlines()
        assert "# HELP c_total Things counted." in lines
        assert "# HELP g A gauge." in lines
        # HELP precedes TYPE for each metric, per the exposition format.
        assert lines.index("# HELP c_total Things counted.") \
            == lines.index("# TYPE c_total counter") - 1

    def test_prometheus_help_escaping(self):
        reg = MetricsRegistry()
        reg.gauge("g", 1.0, help="line one\nline two \\ backslash")
        text = reg.to_prometheus()
        assert "# HELP g line one\\nline two \\\\ backslash" in text
        # The exposition stays one-line-per-record parseable.
        assert all(
            line.startswith("#") or " " in line
            for line in text.splitlines() if line
        )

    def test_prometheus_default_help_fallback(self):
        from repro.obs.metrics import DEFAULT_HELP

        reg = MetricsRegistry()
        reg.gauge("live_power_watts", 95.0, {"subsystem": "cpu"})
        text = reg.to_prometheus()
        assert f"# HELP live_power_watts {DEFAULT_HELP['live_power_watts']}" in text
        # Unknown metrics get TYPE but no HELP rather than a blank line.
        reg.gauge("mystery", 1.0)
        exposition = reg.to_prometheus()
        assert "# TYPE mystery gauge" in exposition
        assert "# HELP mystery" not in exposition

    def test_help_survives_snapshot_merge(self):
        left = MetricsRegistry()
        left.inc("c_total", 1.0, help="From the worker.")
        right = MetricsRegistry()
        right.merge_snapshot(left.snapshot())
        assert "# HELP c_total From the worker." in right.to_prometheus()


class TestTracing:
    def test_span_nesting_and_ordering_in_jsonl(self, tmp_path):
        obs.enable()
        with obs.span("outer", kind="test") as outer:
            with obs.span("inner") as inner:
                inner.set("detail", 42)
            assert outer is not None
        paths = obs.dump(str(tmp_path))
        lines = [
            json.loads(line)
            for line in open(paths[obs.TRACE_JSONL], encoding="utf-8")
            if line.strip()
        ]
        assert [event["name"] for event in lines] == ["inner", "outer"]
        inner_event, outer_event = lines
        assert inner_event["parent"] == outer_event["id"]
        assert outer_event["parent"] is None
        assert inner_event["attrs"] == {"detail": 42}
        assert outer_event["attrs"] == {"kind": "test"}
        assert 0.0 <= inner_event["dur_s"] <= outer_event["dur_s"]

    def test_disabled_span_is_noop(self):
        with obs.span("ignored") as handle:
            assert handle is None
        assert obs.tracer().events == []


class TestDisabledPath:
    def test_disabled_run_produces_zero_events(self, tmp_path):
        """With telemetry off, simulation/sweep/cache record nothing."""
        server = Server(fast_config(), get_workload("idle"), seed=3)
        server.run_ticks(50)
        cache = RunCache(str(tmp_path))
        sweep_specs(_specs(["idle"]), n_workers=1, cache=cache)
        assert obs.registry().empty
        assert obs.tracer().events == []


class TestSweepAggregation:
    @staticmethod
    def _deterministic(snapshot):
        """The machine-independent subset of a registry snapshot.

        Wall-clock metrics (span durations, ticks/s, queue waits) vary
        run to run; everything else must agree between serial and
        parallel execution.
        """
        deterministic_names = (
            "sim_ticks_total",
            "sim_batch_ticks",
            "sim_energy_joules",
            "sim_time_seconds",
            "sim_idle_cache_hit_ratio",
            "run_cache_hits_total",
            "run_cache_misses_total",
            "run_cache_writes_total",
        )
        return {
            kind: [e for e in entries if e["name"] in deterministic_names]
            for kind, entries in snapshot.items()
        }

    def test_parallel_aggregation_equals_serial(self):
        names = ["idle", "gcc"]
        obs.enable()
        sweep_specs(_specs(names), n_workers=1)
        serial = self._deterministic(obs.registry().snapshot())
        assert serial["counters"], "serial sweep recorded no tick counters"

        obs.reset()
        sweep_specs(_specs(names), n_workers=2)
        parallel = self._deterministic(obs.registry().snapshot())

        assert parallel == serial

    def test_parallel_aggregation_includes_worker_spans(self):
        obs.enable()
        sweep_specs(_specs(["idle", "gcc"]), n_workers=2)
        by_name = {}
        for event in obs.tracer().events:
            by_name.setdefault(event["name"], []).append(event)
        assert len(by_name["sweep.run_spec"]) == 2
        assert len(by_name["sweep.sweep_specs"]) == 1
        workloads = {e["attrs"]["workload"] for e in by_name["sweep.run_spec"]}
        assert workloads == {"idle", "gcc"}

    def test_cache_counters_funnelled_into_registry(self, tmp_path):
        obs.enable()
        cache = RunCache(str(tmp_path))
        specs = _specs(["idle"])
        sweep_specs(specs, n_workers=1, cache=cache)
        sweep_specs(specs, n_workers=1, cache=cache)
        counters = obs.registry().counters
        assert counters[("run_cache_hits_total", ())] == 1.0
        assert counters[("run_cache_misses_total", ())] == 1.0
        assert counters[("run_cache_writes_total", ())] == 1.0


class TestCacheLifetimeStats:
    def test_stats_survive_instance_death(self, tmp_path):
        """Satellite bugfix: per-instance stats persist via the index."""
        specs = _specs(["idle"])
        first = RunCache(str(tmp_path))
        sweep_specs(specs, n_workers=1, cache=first)  # miss + write
        second = RunCache(str(tmp_path))
        sweep_specs(specs, n_workers=1, cache=second)  # hit
        # A brand-new instance (simulating a later process) sees the
        # whole history even though both earlier instances are gone.
        fresh = RunCache(str(tmp_path))
        lifetime = fresh.lifetime_stats()
        assert (lifetime.hits, lifetime.misses, lifetime.writes) == (1, 1, 1)
        assert lifetime.hit_ratio == pytest.approx(0.5)
        # The stats entry does not leak into the human-readable index.
        assert all(len(key) == 64 for key in fresh.index())

    def test_unflushed_activity_counts_immediately(self, tmp_path):
        cache = RunCache(str(tmp_path))
        assert cache.load("0" * 64) is None  # unflushed miss
        lifetime = cache.lifetime_stats()
        assert lifetime.misses == 1
        cache.persist_stats()
        cache.persist_stats()  # idempotent: no double counting
        assert RunCache(str(tmp_path)).lifetime_stats().misses == 1

    def test_corrupt_entry_heal_logs_warning(self, tmp_path, caplog):
        """Satellite: the silent corrupt-entry path now warns."""
        cache = RunCache(str(tmp_path))
        key = "0" * 64
        os.makedirs(cache.root, exist_ok=True)
        with open(cache.path_for(key), "w", encoding="utf-8") as handle:
            handle.write("{not json")
        with caplog.at_level(logging.WARNING, logger="repro.exec.cache"):
            assert cache.load(key) is None
        assert any("corrupt" in rec.message for rec in caplog.records)


class TestCliTelemetry:
    def test_telemetry_flag_dumps_all_three_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "tel")
        code = main(
            [
                "run",
                "idle",
                "--duration",
                "20",
                "--tick-ms",
                "50",
                "--telemetry",
                out,
            ]
        )
        assert code == 0
        for name in (obs.METRICS_PROM, obs.METRICS_JSON, obs.TRACE_JSONL):
            assert os.path.exists(os.path.join(out, name)), name
        with open(os.path.join(out, obs.METRICS_JSON), encoding="utf-8") as fh:
            data = json.load(fh)
        assert "provenance" in data
        assert any(
            entry["name"] == "sim_ticks_total" for entry in data["counters"]
        )
        prom = open(os.path.join(out, obs.METRICS_PROM), encoding="utf-8").read()
        assert "# TYPE sim_ticks_total counter" in prom

    def test_obs_command_pretty_prints(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "tel")
        main(["run", "idle", "--duration", "20", "--tick-ms", "50", "--telemetry", out])
        capsys.readouterr()
        code = main(["obs", out])
        assert code == 0
        printed = capsys.readouterr().out
        assert "sim_ticks_total" in printed
        assert "Slowest spans" in printed

    def test_obs_command_without_telemetry_dir(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["obs", str(tmp_path / "nothing-here")])
        assert code == 1
        assert "no telemetry" in capsys.readouterr().out
