"""Table 1: subsystem average power for all twelve workloads.

Regenerates the paper's workload power characterisation and prints it
next to the reference values.  The benchmarked operation is the
steady-state aggregation over all runs (the simulation itself is cached
at session scope).
"""

from repro.analysis.experiments import table1_average_power
from repro.analysis.tables import format_table


def test_table1_average_power(benchmark, context, show):
    result = benchmark.pedantic(
        table1_average_power, args=(context,), iterations=1, rounds=3
    )
    show(format_table(result.title, result.headers, result.rows))
    show(
        format_table(
            "Paper Table 1 (reference)", result.headers, result.paper_rows
        )
    )

    # Shape assertions from the paper's Section 4.1.
    idle = result.measured_row("idle")
    assert idle[-1] < 0.55 * max(row[-1] for row in result.rows), (
        "idle should be ~46% of peak total power"
    )
    for name in ("gcc", "mcf", "vortex", "art", "lucas", "mesa", "mgrid", "wupwise"):
        row = result.measured_row(name)
        assert row[1] > 0.5 * row[-1], f"{name}: CPU should dominate (>50% of total)"
    lucas_memory = result.measured_row("lucas")[3]
    assert lucas_memory == max(
        result.measured_row(n)[3]
        for n in ("gcc", "mcf", "vortex", "art", "lucas", "mesa")
    ), "lucas draws the most memory power of the SPEC set"
    diskload = result.measured_row("DiskLoad")
    assert diskload[4] == max(row[4] for row in result.rows), (
        "DiskLoad produces the highest I/O power"
    )
    idle_disk, diskload_disk = idle[5], diskload[5]
    assert diskload_disk < idle_disk * 1.06, (
        "disk power barely moves (paper: +2.8% under DiskLoad)"
    )
