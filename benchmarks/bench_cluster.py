"""Ensemble power management bench (paper Section 2.3 lineage).

Regenerates the Rajamani-style result on the simulated cluster: node
power-down under diurnal demand saves a large fraction of energy versus
the all-nodes-on baseline, at the cost of boot-edge service risk that
headroom buys back.
"""

from repro.analysis.tables import format_table
from repro.cluster import (
    Cluster,
    PowerAwareManager,
    StaticManager,
    diurnal_demand,
)


def test_cluster_power_down_savings(benchmark, context, show):
    demand = diurnal_demand(
        150, peak_threads=20, trough_threads=2, period_s=150.0, seed=context.seed
    )
    static = Cluster(n_nodes=4, seed=context.seed).run(demand, StaticManager())

    rows = [
        [
            "static (baseline)",
            static.energy_j / 1e3,
            0.0,
            sum(static.nodes_on) / len(static.nodes_on),
            static.dropped_thread_seconds,
        ]
    ]
    results = {}
    for headroom in (2, 8):
        trace = Cluster(n_nodes=4, seed=context.seed).run(
            demand, PowerAwareManager(headroom_threads=headroom)
        )
        results[headroom] = trace
        rows.append(
            [
                f"power-aware (headroom {headroom})",
                trace.energy_j / 1e3,
                100.0 * (1.0 - trace.energy_j / static.energy_j),
                sum(trace.nodes_on) / len(trace.nodes_on),
                trace.dropped_thread_seconds,
            ]
        )
    benchmark(lambda: static.energy_j)
    show(
        format_table(
            "Ensemble power management (4 nodes, diurnal demand)",
            ("manager", "energy kJ", "savings %", "avg nodes on", "dropped"),
            rows,
        )
    )

    # Static never drops and never powers down.
    assert static.dropped_thread_seconds == 0
    # Consolidation saves meaningful energy (Rajamani's 30-50% came
    # from deeper-idling web clusters; our nodes idle at ~65% of load).
    tight = results[2]
    assert tight.energy_j < static.energy_j * 0.85
    # The headroom trade-off is monotone: more headroom, fewer drops,
    # more energy.
    roomy = results[8]
    assert roomy.dropped_thread_seconds <= tight.dropped_thread_seconds
    assert roomy.energy_j >= tight.energy_j
