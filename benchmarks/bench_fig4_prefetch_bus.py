"""Figure 4: prefetch vs non-prefetch bus transactions under mcf.

The diagnostic behind the memory-model switch: as mcf instances pile
up, demand (non-prefetch) transactions saturate under bus congestion
while prefetch traffic keeps growing — so L3 load misses stop tracking
memory power but total bus transactions (demand + prefetch + DMA) keep
tracking it.  Benchmarked operation: building the three series from the
counter trace.
"""

import numpy as np

from repro.analysis.experiments import figure4_prefetch_bus
from repro.analysis.tables import sparkline


def test_fig4_prefetch_bus(benchmark, context, show):
    result = benchmark.pedantic(
        figure4_prefetch_bus, args=(context,), iterations=1, rounds=3
    )

    lines = [result.title]
    for label, series in result.series.items():
        lines.append(
            f"  {label:13}|{sparkline(series)}| "
            f"first-q={series[: len(series) // 4].mean():7.0f} "
            f"last-q={series[-len(series) // 4 :].mean():7.0f} tx/Mcycle"
        )
    show("\n".join(lines))

    prefetch = result.series["prefetch"]
    non_prefetch = result.series["non_prefetch"]
    total = result.series["all"]
    quarter = len(prefetch) // 4

    # Prefetch traffic grows strongly from ramp to full load...
    assert prefetch[-quarter:].mean() > prefetch[:quarter].mean() * 2.0
    # ...and becomes a substantial share of bus traffic at full load.
    share_late = prefetch[-quarter:].mean() / total[-quarter:].mean()
    assert share_late > 0.15
    # Series are consistent: all = prefetch + non_prefetch.
    assert np.allclose(total, prefetch + non_prefetch, rtol=1e-6)
    # Demand transactions grow much less than prefetch late in the run
    # (the saturation that breaks the L3-miss model).
    demand_growth = non_prefetch[-quarter:].mean() / max(
        non_prefetch[:quarter].mean(), 1.0
    )
    prefetch_growth = prefetch[-quarter:].mean() / max(
        prefetch[:quarter].mean(), 1.0
    )
    assert prefetch_growth > demand_growth
