"""Ablation benches for the design choices the paper argues through.

* Memory: L3 misses (Eq. 2) vs bus transactions (Eq. 3) across all
  workloads — the paper's Section 4.2.2 decision.
* I/O: interrupts vs DMA accesses vs uncacheable accesses — the
  Section 4.2.4 event selection.
* Disk: interrupts+DMA vs each alone — the Section 4.2.3 combination.
* Chipset: constant vs a linear bus-transaction model — Section 4.2.5
  (the constant wins because the derived measurement is not causally
  related to any CPU event).
* CPU: with vs without the halted-cycles term — the Section 4.2.1
  improvement over the prior fetch-only model.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.events import Subsystem
from repro.core.features import FeatureSet
from repro.core.models import ConstantModel, PolynomialModel
from repro.core.validation import average_error
from repro.workloads.registry import PAPER_WORKLOADS


def _errors_on_all(context, model, subsystem):
    errors = {}
    for name in PAPER_WORKLOADS:
        run = context.run(name)
        errors[name] = average_error(
            model.predict(run.counters), run.power.power(subsystem)
        )
    return errors


def test_ablation_memory_l3_vs_bus(benchmark, context, show):
    run = context.run("mcf")
    measured = run.power.power(Subsystem.MEMORY)
    features = FeatureSet.of("bus_transactions_per_mcycle")
    benchmark(lambda: PolynomialModel.fit(features, 2, run.counters, measured))

    l3_model = context.l3_suite().model(Subsystem.MEMORY)
    bus_model = context.paper_suite().model(Subsystem.MEMORY)
    l3_errors = _errors_on_all(context, l3_model, Subsystem.MEMORY)
    bus_errors = _errors_on_all(context, bus_model, Subsystem.MEMORY)
    rows = [
        [name, l3_errors[name], bus_errors[name]] for name in PAPER_WORKLOADS
    ]
    rows.append(
        [
            "average",
            float(np.mean(list(l3_errors.values()))),
            float(np.mean(list(bus_errors.values()))),
        ]
    )
    show(
        format_table(
            "Ablation: memory model input (error %, per workload)",
            ("workload", "L3 misses (Eq.2)", "bus tx (Eq.3)"),
            rows,
        )
    )
    # The bus model fixes mcf without breaking mesa.
    assert bus_errors["mcf"] < l3_errors["mcf"] / 2.0
    assert bus_errors["mesa"] < 3.0


def test_ablation_io_event_selection(benchmark, context, show):
    """Interrupts are the best single I/O predictor."""
    train = context.run("DiskLoad")
    measured = train.power.power(Subsystem.IO)
    candidates = {
        "interrupts": FeatureSet.of("interrupts_per_mcycle"),
        "dma_accesses": FeatureSet.of("dma_accesses_per_mcycle"),
        "uncacheable": FeatureSet.of("uncacheable_accesses_per_mcycle"),
    }
    models = {
        name: PolynomialModel.fit(features, 2, train.counters, measured)
        for name, features in candidates.items()
    }
    benchmark(
        lambda: PolynomialModel.fit(
            candidates["interrupts"], 2, train.counters, measured
        )
    )

    rows = []
    averages = {}
    for name, model in models.items():
        errors = _errors_on_all(context, model, Subsystem.IO)
        averages[name] = float(np.mean(list(errors.values())))
        rows.append([name, errors["DiskLoad"], errors["dbt-2"], averages[name]])
    show(
        format_table(
            "Ablation: I/O model event selection (error %)",
            ("event", "DiskLoad", "dbt-2", "all-workload avg"),
            rows,
            precision=3,
        )
    )
    assert averages["interrupts"] <= averages["dma_accesses"] + 0.05
    assert averages["interrupts"] <= averages["uncacheable"] + 0.05


def test_ablation_disk_event_combination(benchmark, context, show):
    """Interrupts + DMA beats either event alone for disk power."""
    train = context.run("DiskLoad")
    measured = train.power.power(Subsystem.DISK)
    candidates = {
        "interrupts+dma": FeatureSet.of(
            "disk_interrupts_per_mcycle", "dma_accesses_per_mcycle"
        ),
        "interrupts": FeatureSet.of("disk_interrupts_per_mcycle"),
        "dma": FeatureSet.of("dma_accesses_per_mcycle"),
    }
    models = {
        name: PolynomialModel.fit(features, 2, train.counters, measured)
        for name, features in candidates.items()
    }
    benchmark(
        lambda: PolynomialModel.fit(
            candidates["interrupts+dma"], 2, train.counters, measured
        )
    )
    rows = []
    averages = {}
    for name, model in models.items():
        errors = _errors_on_all(context, model, Subsystem.DISK)
        averages[name] = float(np.mean(list(errors.values())))
        rows.append(
            [name, errors["DiskLoad"], averages[name], model.diagnostics.r_squared]
        )
    show(
        format_table(
            "Ablation: disk model event combination",
            ("events", "DiskLoad err%", "all-workload err%", "train R^2"),
            rows,
            precision=3,
        )
    )
    # All variants sit under 1% error (the DC term dominates); the
    # combined model fits the training variation at least as well as
    # either event alone — the paper's reason for using both.
    assert models["interrupts+dma"].diagnostics.r_squared >= (
        models["interrupts"].diagnostics.r_squared - 1e-9
    )
    assert models["interrupts+dma"].diagnostics.r_squared >= (
        models["dma"].diagnostics.r_squared - 1e-9
    )
    assert all(avg < 2.0 for avg in averages.values())


def test_ablation_chipset_constant_vs_linear(benchmark, context, show):
    """A linear chipset model does not beat the constant: the derived
    chipset measurement is not causally tied to any CPU event."""
    train = context.run("gcc")
    measured = train.power.power(Subsystem.CHIPSET)
    features = FeatureSet.of("bus_transactions_per_mcycle")
    benchmark(lambda: ConstantModel.fit(train.counters, measured))

    constant = context.paper_suite().model(Subsystem.CHIPSET)
    linear = PolynomialModel.fit(features, 1, train.counters, measured)
    constant_errors = _errors_on_all(context, constant, Subsystem.CHIPSET)
    linear_errors = _errors_on_all(context, linear, Subsystem.CHIPSET)
    const_avg = float(np.mean(list(constant_errors.values())))
    linear_avg = float(np.mean(list(linear_errors.values())))
    show(
        format_table(
            "Ablation: chipset model form (error %, all-workload average)",
            ("model", "avg error"),
            [["constant 19.9W-like", const_avg], ["linear(bus tx)", linear_avg]],
        )
    )
    # The linear model overfits its training run's derivation offset
    # and transfers no better (often worse) than the constant.
    assert const_avg < linear_avg + 2.0


def test_ablation_cpu_halted_cycles_term(benchmark, context, show):
    """Dropping the halted-cycles (clock gating) term breaks idle.

    The prior fetch-based model the paper improves on (its reference
    [3]) was built for busy processors, so the ablation trains it on
    the loaded steady state of gcc; without a halted-cycles term it has
    no way to express the 36 W -> 9 W clock-gating drop and projects
    loaded baseline power onto an idle machine.
    """
    train = context.steady_run("gcc")
    measured = train.power.power(Subsystem.CPU)
    with_halt = context.paper_suite().model(Subsystem.CPU)
    fetch_only = PolynomialModel.fit(
        FeatureSet.of("fetched_uops_per_cycle"), 1, train.counters, measured
    )
    benchmark(
        lambda: PolynomialModel.fit(
            FeatureSet.of("fetched_uops_per_cycle"), 1, train.counters, measured
        )
    )
    idle = context.run("idle")
    idle_measured = idle.power.power(Subsystem.CPU)
    halt_error = average_error(with_halt.predict(idle.counters), idle_measured)
    fetch_error = average_error(fetch_only.predict(idle.counters), idle_measured)
    show(
        format_table(
            "Ablation: CPU model halted-cycles term (idle error %)",
            ("model", "idle error"),
            [
                ["active_fraction + fetched_uops (Eq.1)", halt_error],
                ["fetched_uops only (prior work)", fetch_error],
            ],
        )
    )
    assert halt_error < 5.0
    assert fetch_error > 3.0 * halt_error
