"""Table 2: subsystem power standard deviation per workload.

The paper uses Table 2 to show which subsystems actually vary: CPU and
memory swing by Watts while chipset, I/O and disk are nearly flat —
the reason the chipset model can be a constant and the I/O/disk models
live off a large DC term.
"""

from repro.analysis.experiments import table2_power_stddev
from repro.analysis.tables import format_table


def test_table2_power_stddev(benchmark, context, show):
    result = benchmark.pedantic(
        table2_power_stddev, args=(context,), iterations=1, rounds=3
    )
    show(format_table(result.title, result.headers, result.rows, precision=3))
    show(
        format_table(
            "Paper Table 2 (reference)",
            result.headers,
            result.paper_rows,
            precision=3,
        )
    )

    for row in result.rows:
        name, cpu_std, chipset_std, memory_std, io_std, disk_std, _ = row
        assert chipset_std < 0.8, f"{name}: chipset is nearly flat"
        assert io_std < 1.5, f"{name}: I/O variation is small"
        assert disk_std < 0.5, f"{name}: disk variation is tiny"
    # CPU and memory carry the workload variation.
    gcc = result.measured_row("gcc")
    assert gcc[1] > 1.0, "gcc CPU power varies by Watts across phases"
    assert gcc[3] > 0.2, "gcc memory power varies measurably"
