"""Figure 6: DMA+interrupt disk model on the synthetic disk workload.

Disk is the hardest trickle-down target — farthest from the CPU, with
caches and queues decoupling it — and its dynamic range is tiny.  The
paper's model combines disk-controller interrupts with DMA accesses and
reports 1.75 % error *after removing the 21.6 W DC rotation offset*.
Benchmarked operation: disk model evaluation.
"""

from repro.analysis.experiments import figure6_disk_model
from repro.analysis.tables import format_trace_summary
from repro.core.events import Subsystem
from repro.core.validation import dc_adjusted_error


def test_fig6_disk_model(benchmark, context, show):
    result = figure6_disk_model(context)
    run = context.run("DiskLoad")
    suite = context.paper_suite()
    benchmark(lambda: suite.predict(Subsystem.DISK, run.counters))

    idle_disk = context.run("idle").power.mean(Subsystem.DISK)
    dc_error = dc_adjusted_error(result.modeled, result.measured, idle_disk)

    show(
        format_trace_summary(
            result.title,
            result.timestamps,
            result.measured,
            result.modeled,
            result.avg_error_pct,
        )
    )
    show(
        f"DC-adjusted error (offset {idle_disk:.1f} W): {dc_error:.2f}%  "
        "(paper: 1.75%)"
    )
    show("Equation 4 analogue: " + suite.model(Subsystem.DISK).describe())

    assert result.avg_error_pct < 1.0  # raw error is tiny (big DC term)
    assert dc_error < 60.0  # dynamic part is hard; paper got 1.75 % on
    # its trace, but any DC-adjusted figure is noise-dominated
    # The model captures the real (small) variation, not just the mean.
    assert result.measured.max() - result.measured.min() > 0.3
