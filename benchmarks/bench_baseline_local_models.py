"""Baseline comparison: trickle-down vs local-event and OS-event models.

The paper's pitch is not that CPU-visible events beat per-subsystem
instrumentation on accuracy — local sensors are near-perfect by
construction — but that they get close enough while needing *no*
sensors outside the processor and costing almost nothing to sample.
This bench quantifies both halves of that claim.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.baselines.heath import HeathOsModel
from repro.baselines.janzen import JanzenMemoryModel
from repro.baselines.zedlewski import ZedlewskiDiskModel
from repro.core.events import Subsystem
from repro.core.validation import average_error
from repro.workloads.registry import PAPER_WORKLOADS


def test_baseline_memory_models(benchmark, context, show):
    mcf = context.run("mcf")
    benchmark(lambda: JanzenMemoryModel.fit(mcf))

    janzen = JanzenMemoryModel.fit(mcf)
    trickle = context.paper_suite().model(Subsystem.MEMORY)
    rows = []
    janzen_all, trickle_all = [], []
    for name in PAPER_WORKLOADS:
        run = context.run(name)
        measured = run.power.power(Subsystem.MEMORY)
        j = average_error(janzen.predict(run.counters), measured)
        t = average_error(trickle.predict(run.counters), measured)
        janzen_all.append(j)
        trickle_all.append(t)
        rows.append([name, j, t])
    rows.append(["average", float(np.mean(janzen_all)), float(np.mean(trickle_all))])
    show(
        format_table(
            "Memory: local DRAM events (Janzen) vs trickle-down (error %)",
            ("workload", "local events", "trickle-down"),
            rows,
        )
    )
    # Local events are the accuracy ceiling; trickle-down stays within
    # a usable band of it without any memory-side instrumentation.
    assert np.mean(janzen_all) < np.mean(trickle_all)
    assert np.mean(trickle_all) < np.mean(janzen_all) + 8.0


def test_baseline_disk_models(benchmark, context, show):
    diskload = context.run("DiskLoad")
    benchmark(lambda: ZedlewskiDiskModel.fit(diskload))

    zedlewski = ZedlewskiDiskModel.fit(diskload)
    trickle = context.paper_suite().model(Subsystem.DISK)
    rows = []
    local_all, trickle_all = [], []
    for name in PAPER_WORKLOADS:
        run = context.run(name)
        measured = run.power.power(Subsystem.DISK)
        z = average_error(zedlewski.predict(run.counters), measured)
        t = average_error(trickle.predict(run.counters), measured)
        local_all.append(z)
        trickle_all.append(t)
        rows.append([name, z, t])
    rows.append(["average", float(np.mean(local_all)), float(np.mean(trickle_all))])
    show(
        format_table(
            "Disk: local mode residency (Zedlewski) vs trickle-down (error %)",
            ("workload", "local modes", "trickle-down"),
            rows,
            precision=3,
        )
    )
    assert np.mean(trickle_all) < 2.0  # both are excellent on disk


def test_baseline_os_events_and_sampling_cost(benchmark, context, show):
    gcc = context.run("gcc")
    diskload = context.run("DiskLoad")
    benchmark(lambda: HeathOsModel.fit(gcc, diskload))

    heath = HeathOsModel.fit(gcc, diskload)
    trickle_cpu = context.paper_suite().model(Subsystem.CPU)
    rows = []
    for name in ("idle", "gcc", "mcf", "SPECjbb"):
        run = context.run(name)
        measured = run.power.power(Subsystem.CPU)
        h = average_error(heath.predict_cpu(run.counters), measured)
        t = average_error(trickle_cpu.predict(run.counters), measured)
        rows.append([name, h, t])
    show(
        format_table(
            "CPU: OS utilisation (Heath) vs trickle-down (error %)",
            ("workload", "OS events", "trickle-down"),
            rows,
        )
    )

    os_cost = HeathOsModel.sampling_overhead_cycles(6, os_based=True)
    onchip_cost = HeathOsModel.sampling_overhead_cycles(6, os_based=False)
    show(
        format_table(
            "Sampling cost per 1 Hz reading (cycles, 6 counters)",
            ("method", "cycles"),
            [["OS counters (procfs)", os_cost], ["on-chip counters", onchip_cost]],
            precision=0,
        )
    )
    assert onchip_cost * 50.0 < os_cost
