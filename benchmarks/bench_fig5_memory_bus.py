"""Figure 5: bus-transaction memory model on mcf (the fix).

The workload the L3-miss model could not handle, tracked by the
Equation-3 analogue at ~2 % error.  Benchmarked operation: memory model
evaluation on the mcf trace.
"""

from repro.analysis.experiments import figure5_memory_bus
from repro.analysis.tables import format_trace_summary
from repro.core.events import Subsystem
from repro.core.validation import average_error


def test_fig5_memory_bus(benchmark, context, show):
    result = figure5_memory_bus(context)
    run = context.run("mcf")
    suite = context.paper_suite()
    benchmark(lambda: suite.predict(Subsystem.MEMORY, run.counters))

    show(
        format_trace_summary(
            result.title,
            result.timestamps,
            result.measured,
            result.modeled,
            result.avg_error_pct,
        )
    )
    show("Equation 3 analogue: " + suite.model(Subsystem.MEMORY).describe())

    assert result.avg_error_pct < 4.0  # paper: 2.2 %

    # The L3-miss model fails on this exact trace: it underestimates at
    # full load and errs several times worse than the bus model.
    l3_modeled = context.l3_suite().predict(Subsystem.MEMORY, run.counters)
    l3_error = average_error(l3_modeled, result.measured)
    assert l3_error > 2.0 * result.avg_error_pct
    third = len(result.measured) // 3
    assert l3_modeled[-third:].mean() < result.measured[-third:].mean()
