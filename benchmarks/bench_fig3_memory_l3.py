"""Figure 3: L3-miss memory model on mesa (the case where it works).

The paper trains Equation 2 on multi-instance mesa and reports ~1 %
error; utilisation tapers as instances approach the hardware-thread
count.  Benchmarked operation: fitting the quadratic L3 model.
"""

from repro.analysis.experiments import figure3_memory_l3
from repro.analysis.tables import format_trace_summary
from repro.core.events import Subsystem
from repro.core.features import FeatureSet
from repro.core.models import PolynomialModel


def test_fig3_memory_l3(benchmark, context, show):
    result = figure3_memory_l3(context)
    run = context.run("mesa")
    features = FeatureSet.of("l3_misses_per_mcycle")
    measured = run.power.power(Subsystem.MEMORY)
    benchmark(lambda: PolynomialModel.fit(features, 2, run.counters, measured))

    show(
        format_trace_summary(
            result.title,
            result.timestamps,
            result.measured,
            result.modeled,
            result.avg_error_pct,
        )
    )
    show(
        "Equation 2 analogue: "
        + context.l3_suite().model(Subsystem.MEMORY).describe()
    )

    assert result.avg_error_pct < 2.0  # paper: ~1 %
    # Memory power rises with instance count then tapers near 8 threads.
    t = result.timestamps
    early = result.measured[t < 30.0].mean()
    late = result.measured[t > 230.0].mean()
    assert late > early + 2.0
