"""Benches for the extension subsystems (beyond the paper's evaluation).

* **Per-vector interrupt attribution** — with both disk and NIC active,
  a disk model keyed on *total* interrupts mispredicts, while the
  paper's ``/proc/interrupts``-style per-vector model stays accurate.
  This quantifies why the paper bothered simulating vector information.
* **Network I/O model** — the interrupt-based I/O model retrained with
  both vectors covers NIC traffic the paper never exercised.
* **Thermal detection lead** — how much earlier a counter-based power
  estimate sees a load step than a temperature sensor does (the paper's
  Section 1 motivation, measured).
* **DVFS energy ladder** — V^2*f scaling of the simulated packages.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.events import Subsystem
from repro.core.features import FeatureSet
from repro.core.models import PolynomialModel
from repro.core.validation import average_error
from repro.simulator.system import Server
from repro.simulator.thermal import (
    DEFAULT_THERMAL_PARAMS,
    RcThermalModel,
    ThermalSensor,
    detection_lead_s,
)
from repro.workloads.registry import get_workload


def test_per_vector_interrupt_attribution(benchmark, context, show):
    """Disk power: per-vector vs total-interrupt models under NIC load."""
    train = context.run("DiskLoad")
    measured = train.power.power(Subsystem.DISK)
    per_vector = PolynomialModel.fit(
        FeatureSet.of("disk_interrupts_per_mcycle", "dma_accesses_per_mcycle"),
        2,
        train.counters,
        measured,
    )
    total_irq = PolynomialModel.fit(
        FeatureSet.of("interrupts_per_mcycle", "dma_accesses_per_mcycle"),
        2,
        train.counters,
        measured,
    )
    benchmark(lambda: per_vector.predict(train.counters))

    netload = context.run("netload")
    net_measured = netload.power.power(Subsystem.DISK)
    per_vector_error = average_error(
        per_vector.predict(netload.counters), net_measured
    )
    total_error = average_error(total_irq.predict(netload.counters), net_measured)
    show(
        format_table(
            "Disk model under network load (netload): interrupt attribution",
            ("model input", "disk error % on netload"),
            [
                ["disk vector (/proc/interrupts)", per_vector_error],
                ["total interrupts (raw counter)", total_error],
            ],
            precision=3,
        )
    )
    # The NIC's interrupts confuse the total-interrupt model; the
    # vector-attributed model is unaffected.
    assert per_vector_error < 2.0
    assert total_error > 3.0 * per_vector_error


def test_network_io_model(benchmark, context, show):
    """The I/O model extends to NIC traffic with per-vector features."""
    diskload = context.run("DiskLoad")
    netload = context.run("netload")
    from repro.core.traces import concat_runs

    train = concat_runs([diskload, netload])
    measured = train.power.power(Subsystem.IO)
    features = FeatureSet.of(
        "disk_interrupts_per_mcycle", "network_interrupts_per_mcycle"
    )
    model = PolynomialModel.fit(features, 2, train.counters, measured)
    benchmark(lambda: model.predict(netload.counters))

    rows = []
    for name in ("DiskLoad", "netload", "idle", "SPECjbb"):
        run = context.run(name)
        error = average_error(
            model.predict(run.counters), run.power.power(Subsystem.IO)
        )
        rows.append([name, error])
    show(
        format_table(
            "I/O model with per-vector interrupt features (error %)",
            ("workload", "error"),
            rows,
            precision=3,
        )
    )
    assert all(row[1] < 2.5 for row in rows)


def test_thermal_detection_lead(benchmark, context, show):
    """Counters see a power step tens of seconds before the sensor."""
    suite = context.paper_suite()
    config = context.config
    server = Server(config, get_workload("mesa"), seed=context.seed + 5)
    server.sampler.disable()
    thermal = RcThermalModel()
    thermal.settle({Subsystem.CPU: 38.3 / config.num_packages, Subsystem.MEMORY: 27.7})
    sensor = ThermalSensor()
    ticks = int(round(1.0 / config.tick_s))

    times, est_power, sensed = [], [], []
    for second in range(140):
        for _ in range(ticks):
            breakdown = server.tick()
            per_package = breakdown.as_dict()
            per_package[Subsystem.CPU] /= config.num_packages
            thermal.step(per_package, config.tick_s)
        counts = server.counters.read_and_clear()
        from repro.core.estimator import SystemPowerEstimator

        estimator = SystemPowerEstimator(suite)
        estimate = estimator.estimate(counts, 1.0)
        times.append(second + 1.0)
        est_power.append(estimate.subsystem_w[Subsystem.CPU])
        sensed.append(sensor.read(thermal.temperature_c(Subsystem.CPU), second + 1.0))

    cpu_params = DEFAULT_THERMAL_PARAMS[Subsystem.CPU]
    power_threshold = 80.0
    temp_threshold = (
        cpu_params.steady_state_c(
            power_threshold / config.num_packages, thermal.ambient_c
        )
        - 1.0
    )
    t_power, t_temp = detection_lead_s(
        times, est_power, sensed, power_threshold, temp_threshold
    )
    benchmark(
        lambda: detection_lead_s(
            times, est_power, sensed, power_threshold, temp_threshold
        )
    )
    show(
        f"thermal detection lead: power estimate at t={t_power:.0f}s, "
        f"temperature sensor at t={t_temp:.0f}s -> lead {t_temp - t_power:.0f}s"
    )
    assert t_power is not None and t_temp is not None
    assert t_temp - t_power >= 10.0  # thermal inertia is worth >=10 s here


def test_dvfs_energy_ladder(benchmark, context, show):
    """Package power follows V^2*f down the DVFS ladder."""
    config = context.config
    rows = []
    powers = []
    for state in range(len(config.cpu.dvfs_states)):
        server = Server(config, get_workload("mesa"), seed=context.seed + 6)
        server.set_all_pstates(state)
        for _ in range(int(30.0 / config.tick_s)):
            server.tick()
        cpu_power = server.energy.mean_power_w(Subsystem.CPU)
        powers.append(cpu_power)
        pstate = config.cpu.dvfs_states[state]
        rows.append(
            [
                f"P{state}",
                pstate.frequency_hz / 1.0e9,
                pstate.voltage_scale,
                cpu_power,
            ]
        )
    benchmark(lambda: np.diff(powers))
    show(
        format_table(
            "DVFS ladder: mesa (30 s steady), CPU domain power",
            ("state", "GHz", "Vscale", "CPU W"),
            rows,
        )
    )
    assert powers == sorted(powers, reverse=True)
    # Bottom state saves well over half the CPU power.
    assert powers[-1] < powers[0] * 0.45
