"""Table 3: model validation errors on the integer/commercial set.

Trains the paper suite per its recipe (gcc -> CPU, mcf -> memory,
DiskLoad -> disk & I/O, idle -> chipset) and validates on idle, gcc,
mcf, vortex, dbt-2, SPECjbb and DiskLoad.  The benchmarked operation is
the full validation pass (predict + Equation 6 across the set).
"""

from repro.analysis.experiments import table3_integer_errors
from repro.analysis.tables import format_table
from repro.core.events import Subsystem


def test_table3_integer_errors(benchmark, context, show):
    result = benchmark.pedantic(
        table3_integer_errors, args=(context,), iterations=1, rounds=3
    )
    show(format_table(result.title, result.headers, result.rows))
    show(
        format_table(
            "Paper Table 3 (reference)", result.headers, result.paper_rows
        )
    )
    show(context.paper_suite().describe())

    averages = result.rows[-1]
    assert averages[0] == "average"
    cpu_avg, chipset_avg, memory_avg, io_avg, disk_avg = averages[1:]
    # The paper's headline: < 9% average error per subsystem (allowing
    # a modest band for the simulated substrate).
    assert cpu_avg < 10.0
    assert memory_avg < 10.0
    assert chipset_avg < 12.0
    assert io_avg < 2.0
    assert disk_avg < 2.0

    # mcf is the worst CPU workload (speculation invisible to fetch).
    cpu_errors = {row[0]: row[1] for row in result.rows[:-1]}
    assert max(cpu_errors, key=cpu_errors.get) == "mcf"
    assert cpu_errors["mcf"] > 5.0

    # I/O and disk errors are far below CPU/memory errors everywhere.
    for row in result.rows[:-1]:
        assert row[4] < 3.0 and row[5] < 3.0
