"""Figure 7: interrupt-based I/O model on the synthetic disk workload.

Interrupts beat DMA-access counts for I/O power because small and
write-combined transfers break the DMA-to-switching linearity; the
paper reports < 1 % raw error and 32 % once the large DC term (two I/O
chips, six mostly-idle PCI-X buses) is removed.  Benchmarked operation:
I/O model evaluation.
"""

import numpy as np

from repro.analysis.experiments import figure7_io_model
from repro.analysis.tables import format_trace_summary
from repro.core.events import Subsystem
from repro.core.validation import dc_adjusted_error


def test_fig7_io_model(benchmark, context, show):
    result = figure7_io_model(context)
    run = context.run("DiskLoad")
    suite = context.paper_suite()
    benchmark(lambda: suite.predict(Subsystem.IO, run.counters))

    idle_io = context.run("idle").power.mean(Subsystem.IO)
    dc_error = dc_adjusted_error(result.modeled, result.measured, idle_io)

    show(
        format_trace_summary(
            result.title,
            result.timestamps,
            result.measured,
            result.modeled,
            result.avg_error_pct,
        )
    )
    show(
        f"DC-adjusted error (offset {idle_io:.1f} W): {dc_error:.1f}%  "
        "(paper: 32%)"
    )
    show("Equation 5 analogue: " + suite.model(Subsystem.IO).describe())

    assert result.avg_error_pct < 2.0  # paper: < 1 %
    # The model follows the sync/modify oscillation, not just the DC.
    assert np.corrcoef(result.measured, result.modeled)[0, 1] > 0.9
    assert result.measured.max() - result.measured.min() > 1.0
