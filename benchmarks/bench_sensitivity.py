"""Sensitivity studies: how robust is the paper's methodology?

Questions the paper's deployment story raises but does not measure:

* **Counter slots** — the models need ~8 events at once; what does
  PMU multiplexing cost on machines with fewer slots?
* **Training budget** — how much instrumented (sense-resistor) time is
  actually needed before the models converge?
* **Fold stability** — does it matter *which* part of the staggered
  training trace the regression saw (temporal cross-validation)?
* **Mix generalisation** — models trained on homogeneous runs applied
  to consolidated (heterogeneous) workloads.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core.events import Event, Subsystem
from repro.core.training import ModelTrainer
from repro.core.validation import (
    average_error,
    holdout_validation,
    temporal_cross_validation,
    validate_suite,
)
from repro.counters.multiplex import MultiplexedCounterBank
from repro.simulator.system import Server
from repro.workloads.mixes import STANDARD_MIXES, mix
from repro.workloads.registry import get_workload


def test_sensitivity_counter_slots(benchmark, context, show):
    """Estimation error vs available PMU counter slots."""
    suite = context.paper_suite()
    rows = []
    for slots in (11, 6, 4, 2):
        bank = MultiplexedCounterBank(
            tuple(Event), context.config.num_packages, n_slots=slots
        )
        server = Server(
            context.config,
            get_workload("gcc"),
            seed=context.seed + 9,
            counter_bank=bank,
        )
        run = server.run(150.0).drop_warmup(2)
        error = average_error(
            suite.predict_total(run.counters), run.power.total()
        )
        rows.append([slots, bank.n_groups, error])
    benchmark(lambda: suite.predict_total(run.counters))
    show(
        format_table(
            "Sensitivity: PMU counter slots (gcc, total-power error %)",
            ("slots", "groups", "error"),
            rows,
            precision=3,
        )
    )
    errors = [row[2] for row in rows]
    # Multiplexing degrades accuracy monotonically-ish but stays usable.
    assert errors[0] < 1.0
    assert errors[-1] < 5.0
    assert errors[-1] > errors[0]


def test_sensitivity_training_budget(benchmark, context, show):
    """How much instrumented training time do the models need?"""
    trainer = ModelTrainer()
    runs = context.runs(trainer.recipe.training_workloads + ("mesa", "SPECjbb"))
    rows = []
    for fraction in (1.0, 0.5, 0.25, 0.1):
        report = holdout_validation(trainer, runs, fraction)
        rows.append(
            [
                f"{fraction:.0%}",
                report.subsystem_average(Subsystem.CPU),
                report.subsystem_average(Subsystem.MEMORY),
                report.subsystem_average(Subsystem.IO),
                report.subsystem_average(Subsystem.DISK),
            ]
        )
    benchmark.pedantic(
        holdout_validation, args=(trainer, runs, 0.5), iterations=1, rounds=3
    )
    show(
        format_table(
            "Sensitivity: training-trace fraction vs avg error (%)",
            ("train fraction", "cpu", "memory", "io", "disk"),
            rows,
        )
    )
    # Finding: the recipe is remarkably robust to training budget —
    # the staggered starts put the full utilisation sweep into even the
    # first tenth of the trace, so 30 s of instrumentation already
    # trains usable models.  Assert that robustness (every budget stays
    # within 2.5 points of the full-trace errors).
    full = np.asarray(rows[0][1:], dtype=float)
    for row in rows[1:]:
        assert np.all(np.asarray(row[1:], dtype=float) < full + 2.5), row[0]


def test_sensitivity_temporal_folds(benchmark, context, show):
    """Fold-to-fold stability of the trained models."""
    trainer = ModelTrainer()
    runs = context.runs(trainer.recipe.training_workloads)
    reports = temporal_cross_validation(trainer, runs, n_folds=4)
    benchmark(lambda: np.mean([r.overall_average() for r in reports]))
    overall = [report.overall_average() for report in reports]
    show(
        format_table(
            "Sensitivity: temporal 4-fold cross-validation (overall avg error %)",
            ("fold", "overall error"),
            [[i, e] for i, e in enumerate(overall)],
        )
    )
    assert max(overall) - min(overall) < 4.0, (
        "training should not hinge on one slice of the trace"
    )
    assert np.mean(overall) < 8.0


def test_generalisation_to_mixes(benchmark, context, show):
    """Homogeneous-trained models on heterogeneous (consolidated) runs."""
    suite = context.paper_suite()
    rows = []
    for components in STANDARD_MIXES:
        spec = mix(components)
        server = Server(context.config, spec, seed=context.seed + 13)
        run = server.run(180.0).drop_warmup(2)
        report = validate_suite(suite, [run])
        errors = report.errors[spec.name]
        total_error = average_error(
            suite.predict_total(run.counters), run.power.total()
        )
        rows.append(
            [
                spec.name,
                errors[Subsystem.CPU],
                errors[Subsystem.MEMORY],
                errors[Subsystem.IO],
                errors[Subsystem.DISK],
                total_error,
            ]
        )
    benchmark(lambda: suite.predict_total(run.counters))
    show(
        format_table(
            "Generalisation: heterogeneous mixes (error %, homogeneous-trained)",
            ("mix", "cpu", "memory", "io", "disk", "total"),
            rows,
        )
    )
    for row in rows:
        assert row[-1] < 10.0, f"{row[0]}: total error should stay usable"
        assert row[3] < 3.0 and row[4] < 3.0  # io/disk stay easy
