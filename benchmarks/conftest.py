"""Shared benchmark fixtures.

One :class:`~repro.analysis.experiments.ExperimentContext` is built per
session with paper-scale runs (300 s per workload, twelve workloads).
Simulated runs are cached under ``.repro-cache`` so repeated benchmark
sessions skip the ~1 minute of simulation.

Environment knobs:
    REPRO_BENCH_TICK_MS   simulation tick (default 10 ms)
    REPRO_BENCH_DURATION  seconds per workload (default 300)
    REPRO_BENCH_SEED      run seed (default 7)
    REPRO_SWEEP_WORKERS   parallel sweep processes (default: CPU count)
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import ExperimentContext
from repro.simulator.config import SystemConfig


@pytest.fixture(scope="session")
def context() -> ExperimentContext:
    tick_ms = float(os.environ.get("REPRO_BENCH_TICK_MS", "10"))
    duration = float(os.environ.get("REPRO_BENCH_DURATION", "300"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "7"))
    cache = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")
    workers = os.environ.get("REPRO_SWEEP_WORKERS")
    return ExperimentContext(
        config=SystemConfig(tick_s=tick_ms / 1000.0),
        seed=seed,
        duration_s=duration,
        cache_dir=cache,
        n_workers=int(workers) if workers else None,
    )


@pytest.fixture()
def show(capsys):
    """Print straight to the terminal, bypassing pytest capture, so the
    regenerated paper tables appear in the benchmark log."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show
