"""Figure 2: four-CPU measured vs modeled power under staggered gcc.

The paper's trace shows the staircase of eight gcc threads starting 30 s
apart, saturating after four (gcc gains nothing from SMT), with the
Equation-1 model tracking at ~3.1 % average error.  The benchmarked
operation is the CPU model evaluation over the full trace.
"""

import numpy as np

from repro.analysis.experiments import figure2_cpu_model
from repro.analysis.tables import format_trace_summary
from repro.core.events import Subsystem


def test_fig2_cpu_model(benchmark, context, show):
    result = figure2_cpu_model(context)
    run = context.run("gcc")
    suite = context.paper_suite()
    benchmark(lambda: suite.predict(Subsystem.CPU, run.counters))

    show(
        format_trace_summary(
            result.title,
            result.timestamps,
            result.measured,
            result.modeled,
            result.avg_error_pct,
        )
    )
    show(f"paper quotes ~{result.paper_error_pct:g}% for this trace")

    assert result.avg_error_pct < 6.0  # paper: 3.1 %
    assert np.corrcoef(result.measured, result.modeled)[0, 1] > 0.99

    # The staircase: power ramps as threads start, then saturates once
    # four threads occupy the four packages (gcc's SMT yield is zero).
    measured = result.measured
    t = result.timestamps
    early = measured[t < 30.0].mean()
    mid = measured[(t > 95.0) & (t < 115.0)].mean()
    late = measured[t > 245.0].mean()
    assert mid > early + 50.0, "ramp visible while threads start"
    assert late < mid * 1.15, "gcc saturates at ~4 threads (SMT adds little)"
