"""Runtime-cost benches: the paper's "low computational cost" claim.

The models exist to run *online* inside a power-management loop, so
their evaluation cost matters: Section 3.3.1 restricts the form to
linear/quadratic regressions for exactly this reason.  These benches
measure single-sample estimation latency, batch prediction throughput,
and the simulator's own speed (for reproducibility budgeting).
"""

import numpy as np

from repro.core.estimator import SystemPowerEstimator
from repro.simulator.config import fast_config
from repro.simulator.system import Server
from repro.workloads.registry import get_workload


def test_estimator_single_sample_latency(benchmark, context, show):
    """One 1 Hz estimation step must be microseconds, not milliseconds."""
    suite = context.paper_suite()
    run = context.run("gcc")
    counts = {
        event: run.counters.per_cpu(event)[-1] for event in run.counters.events
    }

    def step():
        estimator = SystemPowerEstimator(suite)
        return estimator.estimate(counts, duration_s=1.0)

    estimate = benchmark(step)
    show(
        f"single-sample complete-system estimate: total={estimate.total_w:.1f}W "
        f"({', '.join(f'{s.value}={w:.1f}' for s, w in estimate.subsystem_w.items())})"
    )
    assert estimate.total_w > 100.0


def test_suite_batch_prediction_throughput(benchmark, context, show):
    """Predicting a whole 300-sample trace for all five subsystems."""
    suite = context.paper_suite()
    run = context.run("mcf")
    result = benchmark(lambda: suite.predict_total(run.counters))
    show(
        f"batch prediction over {run.n_samples} samples x 5 subsystems; "
        f"mean total={float(np.mean(result)):.1f}W"
    )
    assert len(result) == run.n_samples


def test_simulator_tick_throughput(benchmark, show):
    """Simulated ticks per second of the full-system model."""
    config = fast_config()
    server = Server(config, get_workload("SPECjbb"), seed=3)

    def hundred_ticks():
        for _ in range(100):
            server.tick()

    benchmark.pedantic(hundred_ticks, iterations=1, rounds=10)
    show(
        "simulator throughput: 100 ticks (1 s simulated at 10 ms tick) "
        "per round; see benchmark stats above"
    )
