"""Runtime-cost benches: the paper's "low computational cost" claim.

The models exist to run *online* inside a power-management loop, so
their evaluation cost matters: Section 3.3.1 restricts the form to
linear/quadratic regressions for exactly this reason.  These benches
measure single-sample estimation latency, batch prediction throughput,
and the simulator's own speed (for reproducibility budgeting).
"""

import numpy as np

from repro.core.estimator import SystemPowerEstimator
from repro.simulator.config import fast_config
from repro.simulator.fleet import FleetServer
from repro.simulator.system import Server
from repro.workloads.registry import get_workload


def test_estimator_single_sample_latency(benchmark, context, show):
    """One 1 Hz estimation step must be microseconds, not milliseconds.

    The estimator is built once outside the benchmarked closure: a
    deployed power-management loop constructs it at startup and then
    calls ``estimate`` per sample, so timing construction inside the
    loop overstated the steady-state latency (see
    ``test_estimator_construction`` for the one-time cost).
    """
    suite = context.paper_suite()
    run = context.run("gcc")
    counts = {
        event: run.counters.per_cpu(event)[-1] for event in run.counters.events
    }
    estimator = SystemPowerEstimator(suite)

    estimate = benchmark(lambda: estimator.estimate(counts, duration_s=1.0))
    show(
        f"single-sample complete-system estimate: total={estimate.total_w:.1f}W "
        f"({', '.join(f'{s.value}={w:.1f}' for s, w in estimate.subsystem_w.items())})"
    )
    assert estimate.total_w > 100.0


def test_estimator_construction(benchmark, context, show):
    """One-time cost of building an estimator from a trained suite."""
    suite = context.paper_suite()
    estimator = benchmark(lambda: SystemPowerEstimator(suite))
    show("estimator construction: see benchmark stats above")
    assert estimator is not None


def test_suite_batch_prediction_throughput(benchmark, context, show):
    """Predicting a whole 300-sample trace for all five subsystems."""
    suite = context.paper_suite()
    run = context.run("mcf")
    result = benchmark(lambda: suite.predict_total(run.counters))
    show(
        f"batch prediction over {run.n_samples} samples x 5 subsystems; "
        f"mean total={float(np.mean(result)):.1f}W"
    )
    assert len(result) == run.n_samples


def test_simulator_tick_throughput(benchmark, show):
    """Simulated ticks per second of the full-system model.

    Drives the batched :meth:`Server.run_ticks` hot path — the one the
    cluster simulator and ``simulate_workload`` use — which hoists
    per-tick constants and accumulates counters row-wise.
    """
    config = fast_config()
    server = Server(config, get_workload("SPECjbb"), seed=3)

    benchmark.pedantic(lambda: server.run_ticks(100), iterations=1, rounds=10)
    show(
        "simulator throughput: 100 ticks (1 s simulated at 10 ms tick) "
        "per round; see benchmark stats above"
    )


def test_fleet_tick_throughput(benchmark, show):
    """Aggregate lane-ticks per second of the SoA fleet core.

    Steps a width-64 :class:`FleetServer` — 64 independently seeded
    servers advanced per tick in one numpy pass — the kernel behind
    ``Cluster.run`` and same-config sweep lanes.  Divide the per-round
    time into 64 x 100 lane-ticks to compare against the scalar bench
    above; ``scripts/bench_compare.py`` gates the ratio.
    """
    width = 64
    fleet = FleetServer(
        fast_config(), get_workload("SPECjbb"), [3 + i for i in range(width)]
    )
    fleet.run_ticks(50)  # warm

    benchmark.pedantic(lambda: fleet.run_ticks(100), iterations=1, rounds=5)
    show(
        f"fleet throughput: width {width}, 100 ticks per round "
        f"({width * 100} lane-ticks); see benchmark stats above"
    )


def test_fleet_monitored_tick_throughput(benchmark, show):
    """Fleet stepping with the vectorized observability plane attached.

    Same width-64 fleet as above, but with a
    :class:`~repro.obs.fleet.FleetMonitor` watching every lane: per
    closing tick the monitor snapshots counter references and energy
    deltas, and flushes batched design-matrix + drift passes once all
    lanes have a pending window.  ``scripts/obs_overhead.py`` gates
    the monitored/unmonitored ratio at 5%; this bench tracks the
    absolute monitored throughput across commits.
    """
    from repro.core.events import Subsystem
    from repro.core.features import FeatureSet
    from repro.core.models import ConstantModel, PolynomialModel
    from repro.core.suite import TrickleDownSuite
    from repro.obs.fleet import FleetMonitor

    # Hand-built paper-shaped suite (mirrors scripts/obs_overhead.py):
    # the monitor's mechanical cost depends on the term structure only.
    suite = TrickleDownSuite(
        {
            Subsystem.CPU: PolynomialModel(
                FeatureSet.of("active_fraction", "fetched_uops_per_cycle"),
                degree=1,
                coefficients=[35.0, 20.0, 5.0],
            ),
            Subsystem.MEMORY: PolynomialModel(
                FeatureSet.of("bus_transactions_per_mcycle"),
                degree=2,
                coefficients=[18.0, 0.5, 0.01],
            ),
            Subsystem.IO: PolynomialModel(
                FeatureSet.of("interrupts_per_mcycle"),
                degree=1,
                coefficients=[2.0, 0.1],
            ),
            Subsystem.DISK: PolynomialModel(
                FeatureSet.of("disk_interrupts_per_mcycle"),
                degree=1,
                coefficients=[10.0, 0.2],
            ),
            Subsystem.CHIPSET: ConstantModel(19.9),
        },
        recipe_name="bench-fleet-monitor",
    )
    width = 64
    fleet = FleetServer(
        fast_config(), get_workload("SPECjbb"), [3 + i for i in range(width)]
    )
    fleet.attach_fleet_monitor(FleetMonitor(suite))
    fleet.run_ticks(50)  # warm

    benchmark.pedantic(lambda: fleet.run_ticks(100), iterations=1, rounds=5)
    show(
        f"monitored fleet throughput: width {width}, 100 ticks per round "
        f"({width * 100} lane-ticks); see benchmark stats above"
    )


def test_datacenter_scenario_throughput(benchmark, show):
    """Node-seconds of datacenter simulation per wall second.

    The full per-second scenario loop — traffic, budget allocation,
    subsystem-level placement, the fleet step, counter read-out and
    per-pstate estimation — on a two-zone datacenter.  This is the
    number that decides how many simulated node-hours a policy sweep
    can afford; ``scripts/bench_compare.py`` gates it as
    ``datacenter_node_seconds_per_s``.
    """
    from repro.dc import Datacenter, TrafficModel, ZoneSpec, train_zone_bank

    config = fast_config()
    calibration = train_zone_bank(config, duration_s=8.0, seed=901)
    n_nodes = 64
    per_zone = n_nodes // 2
    zones = (
        ZoneSpec("a", per_zone, 0.75 * per_zone * 8 * 25_000.0),
        ZoneSpec(
            "b", per_zone, 0.75 * per_zone * 8 * 25_000.0, phase_s=8.0
        ),
    )
    traffic = TrafficModel(zones, period_s=16.0, seed=5)
    cap_w = 0.65 * calibration.reference_peak_w * n_nodes
    duration_s = 8

    def scenario():
        return Datacenter(
            traffic,
            cap_w,
            config=config,
            calibration=calibration,
            engine="fleet",
            seed=11,
        ).run(duration_s)

    report = benchmark.pedantic(scenario, iterations=1, rounds=3)
    show(
        f"datacenter scenario: {n_nodes} nodes x {duration_s} s per round "
        f"({n_nodes * duration_s} node-seconds); cap held: "
        f"{report.cap_violations == 0}"
    )
    assert report.cap_violations == 0


def test_tsdb_append_throughput(benchmark, tmp_path, show):
    """Samples per second into the durable telemetry store.

    Drives the cached-appender hot path (delta-of-delta timestamp and
    value encoding into the open block) across 8 labelled series, with
    a flush per round so sealing and rollup folding are paid inside the
    measured loop — the cost profile of a monitored run persisting
    every window.  ``scripts/bench_compare.py`` gates it as
    ``tsdb_append_samples_per_s`` (ROADMAP floor: >= 200k samples/s).
    """
    from repro.obs.tsdb import TSDB

    db = TSDB(str(tmp_path / "store"))
    appenders = [
        db.appender("bench_power_watts", {"node": f"n{i}"}) for i in range(8)
    ]
    n_per_series = 5_000
    state = {"t0": 0.0}

    def append_all():
        t0 = state["t0"]
        for appender in appenders:
            for i in range(n_per_series):
                appender.append(t0 + i, 100.0 + (i % 50))
        state["t0"] = t0 + n_per_series
        db.flush()

    benchmark.pedantic(append_all, iterations=1, rounds=5)
    total = len(appenders) * n_per_series
    show(
        f"tsdb append: {len(appenders)} series x {n_per_series} samples "
        f"({total} samples) + flush per round; see benchmark stats above"
    )
    assert db.document()["shards"]["bench_power_watts"]["appended"] >= total
