"""DVFS modeling study: what happens when the governor moves the clock.

The paper's models implicitly assume the training operating point. This
bench measures the three options when a machine actually uses DVFS:

1. **nominal-only** — the paper's suite applied at a lower p-state:
   catastrophic (the coefficients embed the nominal voltage/frequency);
2. **per-state bank** — one suite per operating point: accurate, costs
   per-state calibration runs;
3. **frequency-aware single model** — rate-per-second features pooled
   across states: bounded but substantially worse, because the paper's
   cross-term-free polynomial family cannot express V^2*f x activity.
"""

from repro.analysis.tables import format_table
from repro.core.dvfs import DvfsSuiteBank, train_frequency_aware_cpu_model
from repro.core.events import Subsystem
from repro.core.validation import average_error
from repro.simulator.system import simulate_workload
from repro.workloads.registry import get_workload

TRAIN_WORKLOADS = ("idle", "gcc", "mcf", "DiskLoad")


def _runs_at(context, pstate, names=TRAIN_WORKLOADS, duration_s=200.0):
    return {
        name: simulate_workload(
            get_workload(name),
            duration_s=duration_s,
            seed=context.seed,
            config=context.config,
            pstate=pstate,
        ).drop_warmup(2)
        for name in names
    }


def test_dvfs_model_options(benchmark, context, show):
    low_state = 2  # 0.9 GHz on the default ladder
    runs_nominal = _runs_at(context, 0)
    runs_low = _runs_at(context, low_state)
    bank = DvfsSuiteBank.train({0: runs_nominal, low_state: runs_low})
    freq_aware = train_frequency_aware_cpu_model(
        [runs_nominal["gcc"], runs_low["gcc"],
         runs_nominal["mcf"], runs_low["mcf"],
         runs_nominal["idle"], runs_low["idle"]]
    )

    test = simulate_workload(
        get_workload("mesa"),
        duration_s=180.0,
        seed=context.seed + 1,
        config=context.config,
        pstate=low_state,
    ).drop_warmup(2)
    measured = test.power.power(Subsystem.CPU)
    benchmark(lambda: bank.predict_total(low_state, test.counters))

    nominal_error = average_error(
        bank.suite_for(0).predict(Subsystem.CPU, test.counters), measured
    )
    bank_error = average_error(
        bank.suite_for(low_state).predict(Subsystem.CPU, test.counters), measured
    )
    freq_error = average_error(freq_aware.predict(test.counters), measured)
    show(
        format_table(
            f"DVFS: CPU model error on mesa at p-state {low_state} (0.9 GHz)",
            ("model", "cpu error %"),
            [
                ["nominal-trained suite (paper as-is)", nominal_error],
                ["per-state bank", bank_error],
                ["frequency-aware single model", freq_error],
            ],
        )
    )
    show(
        "finding: the cross-term-free model family cannot express "
        "V^2*f x activity, so per-state training wins by an order of "
        "magnitude — the practice follow-up work adopted."
    )
    assert nominal_error > 50.0
    assert bank_error < 2.0
    assert bank_error < freq_error < nominal_error
