"""Table 4: model validation errors on the floating-point set.

The paper's FP result: memory errors are highest for the workloads with
the highest sustained memory power (lucas, wupwise, mgrid) because the
CPU-visible model cannot see the read/write mix or bank activations —
it underestimates under sustained streaming writes.
"""

import numpy as np

from repro.analysis.experiments import table4_fp_errors
from repro.analysis.tables import format_table
from repro.core.events import Subsystem


def test_table4_fp_errors(benchmark, context, show):
    result = benchmark.pedantic(
        table4_fp_errors, args=(context,), iterations=1, rounds=3
    )
    show(format_table(result.title, result.headers, result.rows))
    show(
        format_table(
            "Paper Table 4 (reference)", result.headers, result.paper_rows
        )
    )

    averages = result.rows[-1]
    cpu_avg, chipset_avg, memory_avg, io_avg, disk_avg = averages[1:]
    assert cpu_avg < 10.0
    assert io_avg < 2.0
    assert disk_avg < 2.0
    # FP memory error exceeds the integer-set level: the streaming
    # write-heavy workloads expose the model's blind spots.
    assert 3.0 < memory_avg < 20.0
    memory_errors = {row[0]: row[3] for row in result.rows[:-1]}
    heavy = np.mean([memory_errors[n] for n in ("lucas", "mgrid", "wupwise")])
    light = np.mean([memory_errors[n] for n in ("art", "mesa")])
    assert heavy > light, (
        "memory error concentrates in the high-sustained-power workloads"
    )

    # The paper notes its model *under*estimates these workloads; on
    # the simulated DRAM the mcf-trained quadratic *over*estimates them
    # instead (documented deviation in EXPERIMENTS.md) — either way the
    # CPU-visible model misjudges sustained streaming writes by >8 W
    # equivalent while staying accurate elsewhere.
    suite = context.paper_suite()
    for name in ("lucas", "mgrid", "wupwise"):
        run = context.run(name)
        modeled = suite.predict(Subsystem.MEMORY, run.counters)
        measured = run.power.power(Subsystem.MEMORY)
        third = len(measured) // 3
        gap = abs(modeled[-third:].mean() - measured[-third:].mean())
        assert gap > 2.0, name
