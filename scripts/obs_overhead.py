"""Telemetry overhead gate: enabled-mode tick loop must stay within 5%.

Measures ``Server.run_ticks`` throughput with telemetry disabled and
enabled as back-to-back pairs and reports the **median paired ratio**:
shared machines throttle and drift on multi-second scales (absolute
throughput can swing 40% over one run), but within a ~0.5 s pair both
modes see the same machine, so the ratio distribution stays tight.
Fails (exit 1) when the median enabled/disabled slowdown exceeds
``--tolerance`` (default 5%, ``OBS_OVERHEAD_TOLERANCE`` overrides).
The instrumentation only fires at batch boundaries, so the measured
overhead is expected to sit in the noise; this gate keeps it that way
as hooks accumulate.

Usage::

    PYTHONPATH=src python scripts/obs_overhead.py
    PYTHONPATH=src python scripts/obs_overhead.py --telemetry-dir out/

``--telemetry-dir`` additionally dumps the enabled run's
``metrics.prom``/``metrics.json``/``trace.jsonl`` (CI uploads the
trace as a build artifact).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro import obs  # noqa: E402
from repro.simulator.config import fast_config  # noqa: E402
from repro.simulator.system import Server  # noqa: E402
from repro.workloads.registry import get_workload  # noqa: E402

#: Ticks per timed batch (matches scripts/bench_compare.py).
_BATCH = 100


def _timed_round(server: Server, budget_s: float) -> float:
    """Per-batch wall time over one ``budget_s`` measurement window."""
    calls = 0
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < budget_s:
        server.run_ticks(_BATCH)
        calls += 1
    return (time.perf_counter() - t0) / calls


def _paired_overhead(server_off, server_on, rounds: int = 20, budget_s: float = 0.25):
    """Median enabled/disabled slowdown over back-to-back round pairs.

    Returns ``(overhead, off_ticks_per_s, on_ticks_per_s)`` where the
    throughputs are the best observed round of each mode (headline
    numbers only; the gate decision uses the median paired ratio).
    """
    ratios = []
    best_off = best_on = float("inf")
    for _ in range(rounds):
        obs.disable()
        off = _timed_round(server_off, budget_s)
        obs.enable()
        on = _timed_round(server_on, budget_s)
        ratios.append(on / off)
        best_off = min(best_off, off)
        best_on = min(best_on, on)
    ratios.sort()
    mid = len(ratios) // 2
    median = ratios[mid] if len(ratios) % 2 else (ratios[mid - 1] + ratios[mid]) / 2.0
    return median - 1.0, _BATCH / best_off, _BATCH / best_on


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("OBS_OVERHEAD_TOLERANCE", "0.05")),
        help="allowed fractional slowdown with telemetry on (default 0.05)",
    )
    parser.add_argument(
        "--telemetry-dir",
        default=None,
        help="also dump the enabled run's telemetry artifacts here",
    )
    args = parser.parse_args(argv)

    workload = get_workload("SPECjbb")
    config = fast_config()

    obs.disable()
    obs.reset()
    server_off = Server(config, workload, seed=3)
    server_off.run_ticks(200)  # warm caches
    server_on = Server(config, workload, seed=3)
    server_on.run_ticks(200)
    overhead, disabled, enabled = _paired_overhead(server_off, server_on)

    if args.telemetry_dir:
        paths = obs.dump(args.telemetry_dir)
        print(f"telemetry artifacts: {', '.join(sorted(paths.values()))}")
    obs.disable()
    obs.reset()

    print(f"telemetry off: {disabled:12.1f} ticks/s (best round)")
    print(f"telemetry on:  {enabled:12.1f} ticks/s (best round)")
    print(
        f"overhead: {overhead * 100.0:+.2f}% median paired "
        f"(gate: {args.tolerance * 100.0:.0f}%)"
    )
    if overhead > args.tolerance:
        print("FAIL: enabled-mode telemetry overhead exceeds the gate")
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
