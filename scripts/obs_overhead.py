"""Telemetry overhead gate: enabled-mode tick loop must stay within 5%.

Measures ``Server.run_ticks`` throughput with telemetry disabled and
enabled as back-to-back pairs and reports the **median paired ratio**:
shared machines throttle and drift on multi-second scales (absolute
throughput can swing 40% over one run), but within a ~0.5 s pair both
modes see the same machine, so the ratio distribution stays tight.
Fails (exit 1) when the median enabled/disabled slowdown exceeds
``--tolerance`` (default 5%, ``OBS_OVERHEAD_TOLERANCE`` overrides).
The instrumentation only fires at batch boundaries, so the measured
overhead is expected to sit in the noise; this gate keeps it that way
as hooks accumulate.

A second paired measurement holds telemetry *on* and attaches a
:class:`~repro.obs.live.LiveMonitor` to both servers, varying only the
estimator's ``attribute`` flag — the per-term watt decomposition must
also stay within the same budget relative to an attribution-free
monitor.  A third pairing holds a width-64 :class:`FleetServer` with
and without a :class:`~repro.obs.fleet.FleetMonitor` attached
(telemetry off in both halves) — the fleet monitor's batched
snapshot-and-flush pass must fit the same budget.  A fifth pairing
runs the monitor loop with and without a durable ``--store`` attached
(window sink + recording rules + per-second flush into the TSDB) —
the persistence path must also stay within the budget.  A gate failure
dumps a flight-recorder bundle (via ``REPRO_FLIGHT_DIR`` when set) so
CI failures come with a post-mortem.

Usage::

    PYTHONPATH=src python scripts/obs_overhead.py
    PYTHONPATH=src python scripts/obs_overhead.py --telemetry-dir out/

``--telemetry-dir`` additionally dumps the enabled run's
``metrics.prom``/``metrics.json``/``trace.jsonl`` (CI uploads the
trace as a build artifact).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro import obs  # noqa: E402
from repro.simulator.config import fast_config  # noqa: E402
from repro.simulator.system import Server  # noqa: E402
from repro.workloads.registry import get_workload  # noqa: E402

#: Ticks per timed batch (matches scripts/bench_compare.py).
_BATCH = 100


def _timed_round(server: Server, budget_s: float) -> float:
    """Per-batch wall time over one ``budget_s`` measurement window."""
    calls = 0
    t0 = time.perf_counter()
    while time.perf_counter() - t0 < budget_s:
        server.run_ticks(_BATCH)
        calls += 1
    return (time.perf_counter() - t0) / calls


def _paired_overhead(
    server_off,
    server_on,
    rounds: int = 20,
    budget_s: float = 0.25,
    setup_off=obs.disable,
    setup_on=obs.enable,
):
    """Median enabled/disabled slowdown over back-to-back round pairs.

    Returns ``(overhead, off_ticks_per_s, on_ticks_per_s)`` where the
    throughputs are the best observed round of each mode (headline
    numbers only; the gate decision uses the median paired ratio).
    ``setup_off`` / ``setup_on`` run before each half of a pair (the
    telemetry gate toggles ``obs``; the attribution gate keeps it on
    for both halves).
    """
    ratios = []
    best_off = best_on = float("inf")
    for _ in range(rounds):
        setup_off()
        off = _timed_round(server_off, budget_s)
        setup_on()
        on = _timed_round(server_on, budget_s)
        ratios.append(on / off)
        best_off = min(best_off, off)
        best_on = min(best_on, on)
    ratios.sort()
    mid = len(ratios) // 2
    median = ratios[mid] if len(ratios) % 2 else (ratios[mid - 1] + ratios[mid]) / 2.0
    return median - 1.0, _BATCH / best_off, _BATCH / best_on


def _toy_suite():
    """A hand-built paper-shaped suite (no training runs needed).

    The coefficients are plausible, not fitted — the attribution gate
    measures *mechanical* cost per estimate, which only depends on the
    term structure, not on the watt values being right.
    """
    from repro.core.events import Subsystem
    from repro.core.features import FeatureSet
    from repro.core.models import ConstantModel, PolynomialModel
    from repro.core.suite import TrickleDownSuite

    return TrickleDownSuite(
        {
            Subsystem.CPU: PolynomialModel(
                FeatureSet.of("active_fraction", "fetched_uops_per_cycle"),
                degree=1,
                coefficients=[35.0, 20.0, 5.0],
            ),
            Subsystem.MEMORY: PolynomialModel(
                FeatureSet.of("bus_transactions_per_mcycle"),
                degree=2,
                coefficients=[18.0, 0.5, 0.01],
            ),
            Subsystem.IO: PolynomialModel(
                FeatureSet.of("interrupts_per_mcycle"),
                degree=1,
                coefficients=[2.0, 0.1],
            ),
            Subsystem.DISK: PolynomialModel(
                FeatureSet.of("disk_interrupts_per_mcycle"),
                degree=1,
                coefficients=[10.0, 0.2],
            ),
            Subsystem.CHIPSET: ConstantModel(19.9),
        },
        recipe_name="obs-overhead-toy",
    )


def _fleet_pair(config, workload, width: int = 64):
    """A warmed unmonitored/monitored fleet pair of the same width.

    The monitored half carries a :class:`~repro.obs.fleet.FleetMonitor`
    with the toy suite; telemetry stays *off* for both halves so the
    measured cost is the monitor's own batched pass (snapshot capture +
    deferred design-matrix flushes), not the metrics registry.
    """
    from repro.obs.fleet import FleetMonitor
    from repro.simulator.fleet import FleetServer

    seeds = [11 + lane for lane in range(width)]
    fleet_off = FleetServer(config, workload, seeds)
    fleet_on = FleetServer(config, workload, seeds)
    fleet_on.attach_fleet_monitor(FleetMonitor(_toy_suite()))
    fleet_off.run_ticks(200)  # warm caches
    fleet_on.run_ticks(200)
    return fleet_off, fleet_on


def _monitored_server(config, workload, seed: int, attribute: bool):
    """A warmed server with an attribution-on/off live monitor attached."""
    from repro.core.estimator import SystemPowerEstimator
    from repro.obs.live import LiveMonitor

    server = Server(config, workload, seed=seed)
    monitor = LiveMonitor(
        SystemPowerEstimator(_toy_suite(), attribute=attribute)
    )
    server.attach_monitor(monitor)
    server.run_ticks(200)  # warm caches
    return server


class _IngestRig:
    """Adapts the streaming service to the ``run_ticks`` pairing API.

    One "tick" ingests one pre-encoded columnar frame through the
    synchronous pipeline; each batch ends with a housekeeping
    :meth:`~repro.serve.service.EstimationService.tick` so the ops-on
    half pays for staleness sweeps and burn-rate checks too, not just
    the stage spans.
    """

    def __init__(self, service, frames: "list[str]") -> None:
        self.service = service
        self.frames = frames
        self._next = 0

    def run_ticks(self, n: int) -> None:
        frames = self.frames
        count = len(frames)
        ingest = self.service.ingest_inline
        for _ in range(n):
            ingest(frames[self._next % count])
            self._next += 1
        self.service.tick()


def _ingest_pair(config):
    """Warmed ops-off/ops-on service rigs over the same frame stream.

    The off half is the bare decode→evaluate→publish pipeline the
    ``ingest_samples_per_s`` benchmark measures (telemetry disabled,
    ``ops=False``); the on half carries the full ops plane — stage
    spans + latency histograms, staleness tracking and SLO burn
    checks — with telemetry enabled.
    """
    from repro.serve import EstimationService, frames_from_run, required_events
    from repro.simulator.system import simulate_workload

    suite = _toy_suite()
    run = simulate_workload(
        get_workload("gcc"), config=config, seed=7, duration_s=240.0
    )
    frames = frames_from_run(
        run,
        "rig",
        frame_samples=64,
        events=required_events(suite),
        include_truth=False,
    )
    rig_off = _IngestRig(EstimationService(suite, ops=False), frames)
    rig_on = _IngestRig(EstimationService(suite, ops=True), frames)
    obs.disable()
    rig_off.run_ticks(20)  # warm caches
    obs.enable()
    rig_on.run_ticks(20)
    obs.disable()
    return rig_off, rig_on


class _StoreRig:
    """Adapts the monitor loop's per-second store work to ``run_ticks``.

    Each batch advances the monitored server one simulated second and
    folds the registry into a windowed aggregate — exactly what the
    ``repro-power monitor`` loop does with or without ``--store``.  The
    store half additionally pays the durable path per second: window
    eviction into the :class:`~repro.obs.tsdb.WindowSink`, recording-
    rule evaluation and the atomic state flush.
    """

    def __init__(self, server, windows, db=None) -> None:
        self.server = server
        self.windows = windows
        self.db = db
        self._now_s = 0.0

    def run_ticks(self, n: int) -> None:
        self.server.run_ticks(n)
        self._now_s += 1.0
        self.windows.ingest(self._now_s, obs.registry())
        if self.db is not None:
            self.db.flush(self._now_s)


def _store_pair(config, workload, store_dir: str):
    """Warmed store-off/store-on monitor rigs (telemetry on in both).

    Both halves run an attribution-on live monitor and fold windows;
    only the on half persists them, so the measured delta is the
    ``--store`` write path itself.
    """
    from repro.obs.live import WindowedRegistry
    from repro.obs.rules import RuleEngine
    from repro.obs.tsdb import TSDB, WindowSink

    rig_off = _StoreRig(
        _monitored_server(config, workload, seed=9, attribute=True),
        WindowedRegistry(window_s=5.0),
    )
    db = TSDB(store_dir)
    db.attach_rules(RuleEngine())
    rig_on = _StoreRig(
        _monitored_server(config, workload, seed=9, attribute=True),
        WindowedRegistry(window_s=5.0, on_evict=WindowSink(db)),
        db=db,
    )
    obs.enable()
    rig_off.run_ticks(_BATCH)  # warm caches
    rig_on.run_ticks(_BATCH)
    return rig_off, rig_on


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("OBS_OVERHEAD_TOLERANCE", "0.05")),
        help="allowed fractional slowdown with telemetry on (default 0.05)",
    )
    parser.add_argument(
        "--telemetry-dir",
        default=None,
        help="also dump the enabled run's telemetry artifacts here",
    )
    args = parser.parse_args(argv)

    workload = get_workload("SPECjbb")
    config = fast_config()

    obs.disable()
    obs.reset()
    server_off = Server(config, workload, seed=3)
    server_off.run_ticks(200)  # warm caches
    server_on = Server(config, workload, seed=3)
    server_on.run_ticks(200)
    overhead, disabled, enabled = _paired_overhead(server_off, server_on)

    if args.telemetry_dir:
        paths = obs.dump(args.telemetry_dir)
        print(f"telemetry artifacts: {', '.join(sorted(paths.values()))}")

    # Attribution gate: telemetry stays ON for both halves; the only
    # difference is the estimator's per-term decomposition.
    obs.reset()
    obs.enable()
    attr_off = _monitored_server(config, workload, seed=5, attribute=False)
    attr_on = _monitored_server(config, workload, seed=5, attribute=True)
    attr_overhead, attr_disabled, attr_enabled = _paired_overhead(
        attr_off, attr_on, setup_off=obs.enable, setup_on=obs.enable
    )
    obs.disable()
    obs.reset()

    # Fleet-monitor gate: width-64 fleet, telemetry off in both halves
    # — the budget covers the monitor's own vectorized pass.
    fleet_off, fleet_on = _fleet_pair(config, workload)
    fleet_overhead, fleet_disabled, fleet_enabled = _paired_overhead(
        fleet_off, fleet_on, setup_off=obs.disable, setup_on=obs.disable
    )
    obs.reset()

    # Streaming-ingest gate: the serve ops plane (stage spans +
    # staleness + SLO burn tracking) against the bare telemetry-off
    # pipeline, one frame per tick.
    rig_off, rig_on = _ingest_pair(config)
    ingest_overhead, ingest_disabled, ingest_enabled = _paired_overhead(
        rig_off, rig_on
    )
    obs.disable()
    obs.reset()

    # Durable-store gate: the monitor loop with and without the TSDB
    # write path (window sink + recording rules + per-second flush);
    # telemetry stays on in both halves.
    import shutil
    import tempfile

    store_dir = tempfile.mkdtemp(prefix="obs-overhead-store-")
    try:
        obs.enable()
        store_off, store_on = _store_pair(config, workload, store_dir)
        store_overhead, store_disabled, store_enabled = _paired_overhead(
            store_off, store_on, setup_off=obs.enable, setup_on=obs.enable
        )
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    obs.disable()
    obs.reset()

    print(f"telemetry off: {disabled:12.1f} ticks/s (best round)")
    print(f"telemetry on:  {enabled:12.1f} ticks/s (best round)")
    print(
        f"overhead: {overhead * 100.0:+.2f}% median paired "
        f"(gate: {args.tolerance * 100.0:.0f}%)"
    )
    print(f"attribution off: {attr_disabled:10.1f} ticks/s (best round)")
    print(f"attribution on:  {attr_enabled:10.1f} ticks/s (best round)")
    print(
        f"attribution overhead: {attr_overhead * 100.0:+.2f}% median paired "
        f"(gate: {args.tolerance * 100.0:.0f}%)"
    )
    print(f"fleet unmonitored: {fleet_disabled:8.1f} fleet-ticks/s (best round)")
    print(f"fleet monitored:   {fleet_enabled:8.1f} fleet-ticks/s (best round)")
    print(
        f"fleet_monitor_overhead: {fleet_overhead * 100.0:+.2f}% median "
        f"paired (gate: {args.tolerance * 100.0:.0f}%)"
    )
    print(f"ingest ops off: {ingest_disabled * 64:11.1f} samples/s (best round)")
    print(f"ingest ops on:  {ingest_enabled * 64:11.1f} samples/s (best round)")
    print(
        f"ingest_ops_overhead: {ingest_overhead * 100.0:+.2f}% median "
        f"paired (gate: {args.tolerance * 100.0:.0f}%)"
    )
    print(f"store off: {store_disabled:16.1f} ticks/s (best round)")
    print(f"store on:  {store_enabled:16.1f} ticks/s (best round)")
    print(
        f"store_overhead: {store_overhead * 100.0:+.2f}% median "
        f"paired (gate: {args.tolerance * 100.0:.0f}%)"
    )
    failures = []
    if overhead > args.tolerance:
        failures.append(("telemetry", overhead))
    if attr_overhead > args.tolerance:
        failures.append(("attribution", attr_overhead))
    if fleet_overhead > args.tolerance:
        failures.append(("fleet_monitor", fleet_overhead))
    if ingest_overhead > args.tolerance:
        failures.append(("ingest_ops", ingest_overhead))
    if store_overhead > args.tolerance:
        failures.append(("store", store_overhead))
    if failures:
        for what, value in failures:
            print(f"FAIL: {what} overhead {value * 100.0:+.2f}% exceeds the gate")
        from repro.obs import flight

        flight.dump_failure_bundle(
            "obs_overhead.gate",
            detail={
                "tolerance": args.tolerance,
                "telemetry_overhead": overhead,
                "attribution_overhead": attr_overhead,
                "fleet_monitor_overhead": fleet_overhead,
                "ingest_ops_overhead": ingest_overhead,
                "store_overhead": store_overhead,
                "failed": [what for what, _ in failures],
            },
        )
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
