"""Calibration helper: simulated steady-state power vs paper Table 1.

Run with ``python scripts/calibrate.py [workload ...]``.  Prints
simulated/target pairs for each subsystem, measured over the
steady-state window (after every staggered thread has started), plus
the counter rates that drive the models — the knobs in
``repro/workloads/*.py`` and ``repro/simulator/config.py`` are tuned
against this output.
"""

from __future__ import annotations

import sys
import time

from repro.core.events import Event, SUBSYSTEMS
from repro.exec import SweepSpec, sweep_specs
from repro.simulator.config import fast_config
from repro.workloads.registry import PAPER_WORKLOADS, get_workload

#: Paper Table 1 (Watts): cpu, chipset, memory, io, disk.
TABLE1 = {
    "idle": (38.4, 19.9, 28.1, 32.9, 21.6),
    "gcc": (162, 20.0, 34.2, 32.9, 21.8),
    "mcf": (167, 20.0, 39.6, 32.9, 21.9),
    "vortex": (175, 17.3, 35.0, 32.9, 21.9),
    "art": (159, 18.7, 35.8, 33.5, 21.9),
    "lucas": (135, 19.5, 46.4, 33.5, 22.1),
    "mesa": (165, 16.8, 33.9, 33.0, 21.8),
    "mgrid": (146, 19.0, 45.1, 32.9, 22.1),
    "wupwise": (167, 18.8, 45.2, 33.5, 22.1),
    "dbt-2": (48.3, 19.8, 29.0, 33.2, 21.6),
    "SPECjbb": (112, 18.7, 37.8, 32.9, 21.9),
    "DiskLoad": (123, 19.9, 42.5, 35.2, 22.2),
}


def steady_state_start(spec) -> float:
    """First time every thread has been running for a while."""
    return max(plan.start_time_s for plan in spec.threads) + 20.0


def main(argv: "list[str]") -> None:
    names = argv or list(PAPER_WORKLOADS)
    config = fast_config()
    print(f"{'wl':9} " + " ".join(f"{s.value:>13}" for s in SUBSYSTEMS) + "   upc  l3/ms  bus/ms")
    t0 = time.time()
    # All runs are independent: sweep them across worker processes
    # (results are bit-identical to the former serial loop).
    starts = {name: steady_state_start(get_workload(name)) for name in names}
    specs = [
        SweepSpec(workload=name, seed=7, duration_s=starts[name] + 90.0, config=config)
        for name in names
    ]
    result = sweep_specs(specs)
    for name, run in zip(names, result.runs):
        start = starts[name]
        keep = run.counters.timestamps >= start
        idx = keep.nonzero()[0]
        run = run.drop_warmup(int(idx[0])) if idx[0] > 0 else run
        row = [run.power.mean(s) for s in SUBSYSTEMS]
        targets = TABLE1[name]
        cycles = run.counters.total(Event.CYCLES).mean()
        upc = run.counters.total(Event.FETCHED_UOPS).mean() / cycles * 4
        l3 = run.counters.total(Event.L3_MISSES).mean() / cycles * 4e6
        bus = run.counters.total(Event.BUS_TRANSACTIONS).mean() / cycles * 4e6
        print(
            f"{name:9} "
            + " ".join(f"{v:6.1f}/{t:6.1f}" for v, t in zip(row, targets))
            + f"  {upc:5.2f} {l3:6.0f} {bus:7.0f}"
        )
    print("wall %.1fs" % (time.time() - t0))


if __name__ == "__main__":
    main(sys.argv[1:])
