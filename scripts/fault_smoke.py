#!/usr/bin/env python
"""Fault-injection smoke: faults must never change the data.

Three phases, each compared bit-for-bit against an undisturbed serial
reference sweep:

1. **worker kill** — a parallel sweep whose first worker task hard-exits
   (``BrokenProcessPool``) plus an injected per-task exception; the
   retry/rebuild machinery must absorb both and the retry counters must
   land in the telemetry dump.
2. **kill/resume** — ``repro-power sweep`` is hard-killed after its
   first checkpoint (exit 137, like a mid-run ``SIGKILL``), then re-run
   with ``--resume``; the resumed cache contents must be identical to
   fresh runs.
3. **telemetry** — with ``--telemetry``, phase 1's metrics are dumped
   and the ``sweep_retries_total`` / ``sweep_worker_failures_total``
   counters verified present in ``metrics.prom``.

Exits non-zero on the first mismatch.  Used by the ``fault-smoke`` CI
job; run locally with ``python scripts/fault_smoke.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
)

from repro import obs  # noqa: E402
from repro.exec import (  # noqa: E402
    FaultPlan,
    RetryPolicy,
    RunCache,
    SweepSpec,
    sweep_specs,
)
from repro.exec.faults import FAULT_PLAN_ENV, PARENT_KILL_EXIT  # noqa: E402
from repro.simulator.config import SystemConfig  # noqa: E402

#: CLI defaults the subprocess phase relies on (tick 10 ms, 3 warmup
#: windows, seed 7) — the reference specs must match exactly.
CLI_TICK_S = 0.010
CLI_WARMUP = 3
CLI_SEED = 7


def check(ok: bool, what: str) -> None:
    print(f"  {'ok' if ok else 'FAIL'}: {what}")
    if not ok:
        from repro.obs import flight

        flight.dump_failure_bundle("fault_smoke", detail={"check": what})
        sys.exit(1)


def runs_identical(a, b) -> bool:
    return a is not None and b is not None and a.to_dict() == b.to_dict()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=20.0)
    parser.add_argument("--workloads", default="idle,gcc")
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="dump phase-1 metrics here and verify the retry counters",
    )
    args = parser.parse_args()
    names = [n for n in args.workloads.split(",") if n]
    os.environ.pop(FAULT_PLAN_ENV, None)

    config = SystemConfig(tick_s=CLI_TICK_S)
    specs = [
        SweepSpec(
            workload=name,
            seed=CLI_SEED,
            duration_s=args.duration,
            config=config,
            warmup_windows=CLI_WARMUP,
        )
        for name in names
    ]

    print(f"reference: serial sweep of {names} for {args.duration:g}s each")
    reference = sweep_specs(specs, n_workers=1).runs

    print("phase 1: worker kill + injected task exception, 2 workers")
    obs.enable()
    obs.reset()
    result = sweep_specs(
        specs,
        n_workers=2,
        retry=RetryPolicy(max_attempts=3, base_delay=0.05),
        faults=FaultPlan(kill={0: 1}, fail={1: 1}),
    )
    check(result.worker_failures >= 1, "worker death was observed and absorbed")
    check(
        obs.counter("sweep_worker_failures_total") >= 1,
        "sweep_worker_failures_total counted",
    )
    for name, ref, run in zip(names, reference, result.runs):
        check(runs_identical(ref, run), f"{name} bit-identical under faults")
    if args.telemetry:
        paths = obs.dump(args.telemetry)
        with open(paths["metrics.prom"], encoding="utf-8") as handle:
            prom = handle.read()
        check(
            "sweep_worker_failures_total" in prom,
            "worker-failure counter in metrics.prom",
        )
        check("sweep_retries_total" in prom or result.retries == 0,
              "retry counter exposed when retries happened")
        print(f"  telemetry dumped to {args.telemetry}")
    obs.disable()
    obs.reset()

    print("phase 2: mid-run parent kill, then --resume")
    cache_dir = tempfile.mkdtemp(prefix="fault-smoke-cache-")
    try:
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            sys.path[0] + os.pathsep + env.get("PYTHONPATH", "")
        )
        env.pop("REPRO_CACHE_DIR", None)
        base_cmd = [
            sys.executable, "-m", "repro.cli", "sweep", ",".join(names),
            "--duration", str(args.duration), "--cache-dir", cache_dir,
            "--workers", "1",
        ]
        killed = subprocess.run(
            base_cmd,
            env={**env, FAULT_PLAN_ENV: json.dumps({"exit_parent_after": 1})},
            capture_output=True,
            text=True,
        )
        check(
            killed.returncode == PARENT_KILL_EXIT,
            f"sweep died hard after first checkpoint (rc={killed.returncode})",
        )
        stored = [n for n in os.listdir(cache_dir) if n.startswith("run-")]
        check(
            0 < len(stored) < len(names),
            f"partial checkpoint on disk ({len(stored)}/{len(names)} run file(s))",
        )
        resumed = subprocess.run(
            base_cmd + ["--resume"], env=env, capture_output=True, text=True
        )
        check(resumed.returncode == 0, "resumed sweep completed")
        check("resuming" in resumed.stdout, "resume reported its checkpoints")
        cache = RunCache(cache_dir)
        for name, spec, ref in zip(names, specs, reference):
            check(
                runs_identical(ref, cache.load(spec.key())),
                f"{name} resumed bit-identical to uninterrupted run",
            )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    print("fault smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
