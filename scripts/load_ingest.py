#!/usr/bin/env python
"""Open-loop load generator for the streaming estimation service.

Points at a running ``repro-power serve`` endpoint, simulates one
workload run locally, and replays its counter windows as columnar
newline-JSON frames over HTTP POST ``/ingest`` at one or more *offered*
rates (open loop: the schedule never slows down because the server is
slow — that is what makes backpressure visible).  For each rate it
reports achieved throughput, shed counts and per-POST latency
quantiles — the latency/throughput curve of the service:

    $ repro-power serve --port 9470 --duration 60 &
    $ python scripts/load_ingest.py --url http://127.0.0.1:9470/ingest \\
          --rates 5000,20000,80000,200000 --seconds 5

The generator asks ``/service`` for the suite's required events and
ships only those (the lean wire set), with truth watts riding along so
the service scores drift and the error SLO live.

Typical single-process curve on a 4-cpu container (64-sample frames,
7-event wire): offered 5k-100k samples/s is absorbed with p99 POST
latency in the low milliseconds; past the evaluate capacity
(~100-130k samples/s) the shard queues fill and the shed column climbs
instead of latency exploding — the load-shedding policy in action.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.events import Event  # noqa: E402
from repro.serve.protocol import frames_from_run  # noqa: E402
from repro.simulator import simulate_workload  # noqa: E402
from repro.workloads import get_workload  # noqa: E402


def _get_json(url: str, timeout: float = 10.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return json.load(response)


def _post(url: str, body: bytes, timeout: float = 10.0) -> dict:
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/x-ndjson"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return json.load(response)
    except urllib.error.HTTPError as error:
        # 429 = fully shed, 400 = fully rejected; both carry a receipt
        # body (partial successes are 200: read the receipt's counts).
        return json.load(error)


def _quantile(sorted_values: "list[float]", q: float) -> float:
    if not sorted_values:
        return float("nan")
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


def run_step(
    url: str,
    frames: "list[tuple[bytes, int]]",
    rate: float,
    seconds: float,
) -> dict:
    """Offer ``rate`` samples/s for ``seconds``; returns the step row."""
    offered = accepted = shed = errors = posts = 0
    latencies: "list[float]" = []
    started = time.monotonic()
    index = 0
    while True:
        now = time.monotonic() - started
        if now >= seconds:
            break
        body, n_samples = frames[index % len(frames)]
        index += 1
        due = offered / rate if rate > 0 else 0.0
        delay = due - now
        if delay > 0:
            time.sleep(delay)
        t0 = time.monotonic()
        receipt = _post(url, body)
        latencies.append(time.monotonic() - t0)
        posts += 1
        offered += n_samples
        accepted += receipt.get("accepted", 0)
        shed += receipt.get("shed", 0)
        errors += len(receipt.get("errors", ()))
    elapsed = time.monotonic() - started
    latencies.sort()
    return {
        "offered_per_s": offered / elapsed,
        "accepted_per_s": accepted / elapsed,
        "offered": offered,
        "accepted": accepted,
        "shed": shed,
        "errors": errors,
        "posts": posts,
        "p50_ms": _quantile(latencies, 0.50) * 1e3,
        "p95_ms": _quantile(latencies, 0.95) * 1e3,
        "p99_ms": _quantile(latencies, 0.99) * 1e3,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:9470/ingest",
        help="ingest endpoint (default http://127.0.0.1:9470/ingest)",
    )
    parser.add_argument("--workload", default="gcc")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--duration",
        type=float,
        default=60.0,
        help="simulated seconds of source trace to loop over (default 60)",
    )
    parser.add_argument(
        "--nodes", type=int, default=4, help="distinct node names (default 4)"
    )
    parser.add_argument(
        "--frame",
        type=int,
        default=64,
        help="samples per columnar frame (default 64)",
    )
    parser.add_argument(
        "--rates",
        default="5000,20000,80000,200000",
        help="comma-separated offered rates in samples/s "
        "(0 = as fast as possible)",
    )
    parser.add_argument(
        "--seconds",
        type=float,
        default=5.0,
        help="wall seconds per rate step (default 5)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the curve as JSON"
    )
    args = parser.parse_args(argv)

    # With --json, stdout carries only the JSON document (pipe-safe);
    # the human progress lines move to stderr.
    out = sys.stderr if args.json else sys.stdout

    base = args.url.rsplit("/ingest", 1)[0]
    try:
        document = _get_json(base + "/service")
    except (OSError, ValueError) as error:
        print(f"load_ingest: cannot reach {base}/service: {error}", file=sys.stderr)
        return 2
    required = document.get("required_events") or []
    events = frozenset(Event(name) for name in required) or None
    print(
        f"load_ingest: target {args.url}, wire events: "
        + (",".join(sorted(e.value for e in events)) if events else "all"),
        file=out,
    )

    run = simulate_workload(
        get_workload(args.workload), duration_s=args.duration, seed=args.seed
    )
    streams = [
        [
            (line.encode("utf-8"), len(json.loads(line)["t"]))
            for line in frames_from_run(
                run, f"load-{i}", frame_samples=args.frame, events=events
            )
        ]
        for i in range(max(1, args.nodes))
    ]
    # Interleave nodes round-robin so shards share the load.
    frames: "list[tuple[bytes, int]]" = [
        pair for group in zip(*streams) for pair in group
    ]
    print(
        f"load_ingest: {len(frames)} frame(s) from {args.workload} "
        f"({args.duration:g}s sim, {args.frame} samples/frame)",
        file=out,
    )

    rates = [float(part) for part in args.rates.split(",") if part.strip()]
    rows = []
    for rate in rates:
        row = run_step(args.url, frames, rate, args.seconds)
        row["rate"] = rate
        rows.append(row)
        print(
            f"load_ingest: offered {row['offered_per_s']:>9,.0f}/s  "
            f"accepted {row['accepted_per_s']:>9,.0f}/s  "
            f"shed {row['shed']:>7}  "
            f"p50 {row['p50_ms']:6.2f}ms  p95 {row['p95_ms']:6.2f}ms  "
            f"p99 {row['p99_ms']:6.2f}ms",
            file=out,
        )
    if args.json:
        print(json.dumps({"url": args.url, "steps": rows}, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
