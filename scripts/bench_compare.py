"""Benchmark regression gate: measure, compare against the baseline.

Measures a small set of runtime-cost metrics (the ones the paper's
"low computational cost" claim rests on, plus the simulator's own
throughput) and compares them against the checked-in
``BENCH_baseline.json``.  A metric that regresses by more than the
tolerance (default 20 %) in its bad direction fails the run with exit
code 1 — improvements never fail.  Metrics measured in this run but
absent from the baseline are reported as ``NEW`` and pass (rebaseline
with ``--update`` to start gating them).

Usage::

    PYTHONPATH=src python scripts/bench_compare.py            # compare
    PYTHONPATH=src python scripts/bench_compare.py --update   # rebaseline
    PYTHONPATH=src python scripts/bench_compare.py --tolerance 0.5
    PYTHONPATH=src python scripts/bench_compare.py --fleet-widths 64

Absolute times differ across machines, so compare against a baseline
recorded on the same class of hardware (CI re-records via ``--update``
when the runner fleet changes; ``BENCH_COMPARE_TOLERANCE`` widens the
gate for noisy shared runners).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_PATH = os.path.join(REPO_ROOT, "BENCH_baseline.json")

sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro import obs  # noqa: E402
from repro.core.estimator import SystemPowerEstimator  # noqa: E402
from repro.core.training import ModelTrainer  # noqa: E402
from repro.exec import sweep  # noqa: E402
from repro.simulator.config import fast_config  # noqa: E402
from repro.simulator.fleet import FleetServer  # noqa: E402
from repro.simulator.system import Server, simulate_workload  # noqa: E402
from repro.workloads.registry import get_workload  # noqa: E402

#: Workloads the default recipe needs, simulated short for the gate.
_TRAIN_DURATION_S = 60.0
_TRAIN_SEED = 7

#: Fleet widths measured by default; CI narrows this via
#: ``BENCH_FLEET_WIDTHS`` (the smoke job runs width 64 only).
_DEFAULT_FLEET_WIDTHS = "1,64,256,1024"

#: Width whose throughput is published under the canonical metric name
#: (the acceptance gate: >= 10x the scalar ticks/s at width >= 256).
_FLEET_GATE_WIDTH = 256


def _fleet_metric_name(width: int) -> str:
    if width == _FLEET_GATE_WIDTH:
        return "simulator_fleet_ticks_per_s"
    return f"simulator_fleet_ticks_per_s_w{width}"


def _parse_fleet_widths(text: str) -> "list[int]":
    widths = [int(part) for part in text.split(",") if part.strip()]
    if any(width < 1 for width in widths):
        raise ValueError(f"fleet widths must be >= 1; got {text!r}")
    return widths


def _best_of(fn, rounds: int, budget_s: float = 0.25) -> float:
    """Best (smallest) per-call wall time over ``rounds`` timed batches."""
    best = float("inf")
    for _ in range(rounds):
        calls = 0
        t0 = time.perf_counter()
        while time.perf_counter() - t0 < budget_s:
            fn()
            calls += 1
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed / calls)
    return best


def measure(fleet_widths: "list[int] | None" = None) -> "dict[str, dict]":
    """Run every gate metric; returns name -> {value, unit, direction}."""
    if fleet_widths is None:
        fleet_widths = _parse_fleet_widths(_DEFAULT_FLEET_WIDTHS)
    metrics: "dict[str, dict]" = {}

    # 1. Simulator tick throughput via the batched hot path.
    server = Server(fast_config(), get_workload("SPECjbb"), seed=3)
    server.run_ticks(200)  # warm caches and JIT-able paths
    per_batch = _best_of(lambda: server.run_ticks(100), rounds=8)
    metrics["simulator_ticks_per_s"] = {
        "value": 100.0 / per_batch,
        "unit": "ticks/s",
        "direction": "higher",
    }

    # 1b. Fleet throughput: aggregate lane-ticks/s of the SoA core.
    for width in fleet_widths:
        fleet = FleetServer(
            fast_config(), get_workload("SPECjbb"), [3 + i for i in range(width)]
        )
        fleet.run_ticks(50)  # warm
        per_batch = _best_of(lambda: fleet.run_ticks(100), rounds=3)
        metrics[_fleet_metric_name(width)] = {
            "value": width * 100.0 / per_batch,
            "unit": "lane-ticks/s",
            "direction": "higher",
        }

    # 1c'. Datacenter scenario throughput: the full per-second loop —
    # traffic, budget allocation, subsystem-level placement, fleet
    # step, counter read-out, per-pstate estimation — in simulated
    # node-seconds per wall second.
    from repro.dc import Datacenter, TrafficModel, ZoneSpec, train_zone_bank

    dc_calibration = train_zone_bank(fast_config(), duration_s=8.0, seed=901)
    dc_nodes = 128
    dc_per_zone = dc_nodes // 2
    dc_traffic = TrafficModel(
        (
            ZoneSpec("a", dc_per_zone, 0.75 * dc_per_zone * 8 * 25_000.0),
            ZoneSpec(
                "b",
                dc_per_zone,
                0.75 * dc_per_zone * 8 * 25_000.0,
                phase_s=10.0,
            ),
        ),
        period_s=20.0,
        seed=5,
    )
    dc_cap_w = 0.65 * dc_calibration.reference_peak_w * dc_nodes
    dc_duration_s = 10

    def _dc_scenario() -> None:
        Datacenter(
            dc_traffic,
            dc_cap_w,
            config=fast_config(),
            calibration=dc_calibration,
            engine="fleet",
            seed=11,
        ).run(dc_duration_s)

    per_pass = _best_of(_dc_scenario, rounds=3)
    metrics["datacenter_node_seconds_per_s"] = {
        "value": dc_nodes * float(dc_duration_s) / per_pass,
        "unit": "node-s/s",
        "direction": "higher",
    }

    # 2/3. Estimator costs need a trained suite: short parallel sweep.
    trainer = ModelTrainer()
    runs = sweep(
        trainer.recipe.training_workloads,
        config=fast_config(),
        seed=_TRAIN_SEED,
        duration_s=_TRAIN_DURATION_S,
        warmup_windows=2,
    )
    suite = trainer.train(runs)

    # 1c. Monitored-fleet throughput: the width-64 fleet again, now
    # with the vectorized observability plane (FleetMonitor) attached
    # and evaluating the trained suite per closed sampler window.
    # Measured unconditionally — unlike the per-width fleet metrics,
    # this one always gates.
    from repro.obs.fleet import FleetMonitor

    monitored_width = 64
    fleet = FleetServer(
        fast_config(),
        get_workload("SPECjbb"),
        [3 + i for i in range(monitored_width)],
    )
    fleet.attach_fleet_monitor(FleetMonitor(suite))
    fleet.run_ticks(50)  # warm
    per_batch = _best_of(lambda: fleet.run_ticks(100), rounds=3)
    metrics["fleet_monitored_ticks_per_s"] = {
        "value": monitored_width * 100.0 / per_batch,
        "unit": "lane-ticks/s",
        "direction": "higher",
    }

    sample_run = runs[trainer.recipe.training_workloads[0]]
    counts = {
        event: sample_run.counters.per_cpu(event)[-1]
        for event in sample_run.counters.events
    }
    estimator = SystemPowerEstimator(suite)
    metrics["estimator_sample_latency_us"] = {
        "value": _best_of(lambda: estimator.estimate(counts, duration_s=1.0), rounds=5)
        * 1e6,
        "unit": "us",
        "direction": "lower",
    }
    metrics["suite_batch_predict_us"] = {
        "value": _best_of(lambda: suite.predict_total(sample_run.counters), rounds=5)
        * 1e6,
        "unit": "us",
        "direction": "lower",
    }

    # 4. Streaming-service ingest: the full decode -> shard -> batched
    # evaluate -> publish pipeline of repro.serve, on pre-encoded
    # columnar frames over the lean wire (only the events the suite
    # consumes), telemetry off — the ROADMAP's >= 100k samples/s gate.
    # A dedicated long source trace (600 simulated seconds, ~600
    # windows) keeps per-pass fixed costs from dominating the rate.
    from repro.serve import EstimationService, frames_from_run, required_events

    ingest_run = simulate_workload(
        get_workload("gcc"),
        config=fast_config(),
        seed=_TRAIN_SEED,
        duration_s=600.0,
    )
    service = EstimationService(suite, ops=False)
    frames = frames_from_run(
        ingest_run,
        "bench-node",
        frame_samples=64,
        events=required_events(suite),
        include_truth=False,
    )
    total_samples = ingest_run.counters.n_samples
    for line in frames:  # warm
        service.ingest_inline(line)

    def _ingest_all() -> None:
        for line in frames:
            service.ingest_inline(line)

    per_pass = _best_of(_ingest_all, rounds=5)
    metrics["ingest_samples_per_s"] = {
        "value": total_samples / per_pass,
        "unit": "samples/s",
        "direction": "higher",
    }

    # 5. Durable-telemetry append: the TSDB's cached-appender hot path
    # (delta-of-delta + varint encoding) across 8 labelled series with
    # a flush (seal + rollup fold + state commit) per pass — the
    # ROADMAP's >= 200k samples/s floor for the --store write path.
    import shutil
    import tempfile

    from repro.obs.tsdb import TSDB

    store_dir = tempfile.mkdtemp(prefix="bench-tsdb-")
    try:
        db = TSDB(store_dir)
        appenders = [
            db.appender("bench_power_watts", {"node": f"n{i}"})
            for i in range(8)
        ]
        n_per_series = 5_000
        state = {"t0": 0.0}

        def _append_all() -> None:
            t0 = state["t0"]
            for appender in appenders:
                for i in range(n_per_series):
                    appender.append(t0 + i, 100.0 + (i % 50))
            state["t0"] = t0 + n_per_series
            db.flush()

        _append_all()  # warm
        per_pass = _best_of(_append_all, rounds=5)
        metrics["tsdb_append_samples_per_s"] = {
            "value": len(appenders) * n_per_series / per_pass,
            "unit": "samples/s",
            "direction": "higher",
        }
    finally:
        shutil.rmtree(store_dir, ignore_errors=True)
    return metrics


def compare(measured: "dict[str, dict]", baseline: "dict[str, dict]", tolerance: float) -> int:
    provenance = baseline.get("_provenance")
    if provenance:
        print(
            "baseline recorded {} on {} @ {} (python {})".format(
                provenance.get("date", "?"),
                provenance.get("host", "?"),
                provenance.get("git_sha", "?"),
                provenance.get("python", "?"),
            )
        )
    else:
        print("baseline has no provenance record (re-record with --update)")
    failures = 0
    for name, entry in sorted(baseline.items()):
        if name.startswith("_"):
            continue
        if name not in measured:
            # Fleet-width metrics are opt-in per run (BENCH_FLEET_WIDTHS
            # narrows the set; CI measures width 64 only), so a baseline
            # width this run skipped is not a regression.
            if name.startswith("simulator_fleet_ticks_per_s"):
                print(f"skip {name}: width not measured this run")
                continue
            print(f"MISSING {name}: metric not measured")
            failures += 1
            continue
        base = float(entry["value"])
        now = float(measured[name]["value"])
        if entry.get("direction", "lower") == "higher":
            change = (base - now) / base  # positive = got slower
        else:
            change = (now - base) / base
        status = "FAIL" if change > tolerance else "ok"
        print(
            f"{status:4} {name:28} baseline {base:12.1f} {entry.get('unit', ''):8} "
            f"now {now:12.1f}  ({'regressed' if change > 0 else 'improved'} "
            f"{abs(change) * 100.0:.1f}%)"
        )
        if change > tolerance:
            failures += 1
    for name in sorted(set(measured) - set(baseline)):
        entry = measured[name]
        # No baseline yet: report and pass; --update records it.
        print(
            f"NEW  {name:28} now {float(entry['value']):12.1f} "
            f"{entry.get('unit', ''):8} (no baseline; rerun with --update to record)"
        )
    return failures


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true", help="rewrite the baseline from this run"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("BENCH_COMPARE_TOLERANCE", "0.20")),
        help="allowed fractional regression before failing (default 0.20)",
    )
    parser.add_argument("--baseline", default=BASELINE_PATH)
    parser.add_argument(
        "--fleet-widths",
        default=os.environ.get("BENCH_FLEET_WIDTHS", _DEFAULT_FLEET_WIDTHS),
        help="comma-separated fleet widths to benchmark (default "
        f"{_DEFAULT_FLEET_WIDTHS}; baseline widths not measured are "
        "skipped, not failed)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="DIR",
        default=None,
        help="collect telemetry during the measurement and dump "
        "metrics.prom/metrics.json/trace.jsonl into DIR (CI uploads "
        "the trace as a build artifact)",
    )
    args = parser.parse_args(argv)

    if args.telemetry:
        obs.enable()
    print("measuring...", flush=True)
    measured = measure(fleet_widths=_parse_fleet_widths(args.fleet_widths))
    if args.telemetry:
        paths = obs.dump(args.telemetry)
        print(f"telemetry artifacts: {', '.join(sorted(paths.values()))}")

    if args.update:
        # The provenance stanza (git sha, date, host — repro.obs's
        # registry-export header) records what later comparisons are
        # comparing against; compare() skips underscore-prefixed keys.
        document = {"_provenance": obs.provenance(), **measured}
        with open(args.baseline, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.baseline}")
        for name, entry in sorted(measured.items()):
            print(f"  {name:28} {entry['value']:12.1f} {entry['unit']}")
        return 0

    try:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
    except FileNotFoundError:
        print(f"no baseline at {args.baseline}; run with --update first")
        return 2

    failures = compare(measured, baseline, args.tolerance)
    if failures:
        print(f"{failures} metric(s) regressed beyond {args.tolerance * 100:.0f}%")
        from repro.obs import flight

        flight.dump_failure_bundle(
            "bench_compare.regression",
            detail={"n_regressed": failures, "tolerance": args.tolerance},
        )
        return 1
    print("all metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
