"""Estimator-driven power capping — the adaptation the paper motivates.

Data centres must keep racks inside power and thermal envelopes
(Section 1 / Ranganathan et al.).  Temperature sensors react too late;
this example closes the loop the paper proposes instead: a governor
reads *performance counters* once per second, estimates complete-system
power with the trickle-down suite (no power sensing hardware), and
throttles the run queue (Kotla-style process throttling) whenever the
estimate exceeds the cap.

Run:  python examples/datacenter_power_cap.py
"""

from repro import ModelTrainer, Subsystem, SystemPowerEstimator, fast_config
from repro.simulator.system import Server, simulate_workload
from repro.workloads.registry import get_workload

SEED = 11
CONFIG = fast_config()
POWER_CAP_W = 200.0
TRAIN_WORKLOADS = ("idle", "gcc", "mcf", "DiskLoad")


class ThrottlingGovernor:
    """Keeps estimated power under a cap by limiting runnable threads."""

    def __init__(self, estimator: SystemPowerEstimator, cap_w: float, n_threads: int):
        self.estimator = estimator
        self.cap_w = cap_w
        self.max_runnable = n_threads
        self.n_threads = n_threads
        self.actions: "list[tuple[float, float, int]]" = []

    def control(self, now_s: float, counts: dict, duration_s: float) -> int:
        """One control step: estimate, then raise/lower the thread cap."""
        estimate = self.estimator.estimate(counts, duration_s, timestamp_s=now_s)
        if estimate.total_w > self.cap_w and self.max_runnable > 1:
            self.max_runnable -= 1  # shed one worker
        elif estimate.total_w < self.cap_w - 12.0 and self.max_runnable < self.n_threads:
            self.max_runnable += 1  # headroom: admit one back
        self.actions.append((now_s, estimate.total_w, self.max_runnable))
        return self.max_runnable


def train_suite():
    print("training the trickle-down suite...")
    runs = {
        name: simulate_workload(
            get_workload(name), duration_s=280.0, seed=SEED, config=CONFIG
        ).drop_warmup(2)
        for name in TRAIN_WORKLOADS
    }
    return ModelTrainer().train(runs)


def main() -> None:
    suite = train_suite()
    estimator = SystemPowerEstimator(suite)

    # A hot workload: all eight SPECjbb warehouses, no stagger.
    workload = get_workload("SPECjbb")
    server = Server(CONFIG, workload, seed=SEED + 1)
    server.sampler.disable()  # the governor owns the counters here
    all_threads = list(server.threads)
    governor = ThrottlingGovernor(estimator, POWER_CAP_W, len(all_threads))

    ticks_per_second = int(round(1.0 / CONFIG.tick_s))
    duration_s = 180
    true_power = []
    capped_seconds = 0
    print(f"\nclosed loop: cap={POWER_CAP_W:.0f} W, {duration_s}s of SPECjbb")
    for second in range(duration_s):
        second_energy = 0.0
        for _ in range(ticks_per_second):
            breakdown = server.tick()
            second_energy += breakdown.total_w * CONFIG.tick_s
        true_power.append(second_energy)

        # The governor reads the counters the sampler just collected.
        counts = server.counters.read_and_clear()
        limit = governor.control(float(second + 1), counts, 1.0)
        server.threads = all_threads[:limit]  # shed/admit workers
        if limit < len(all_threads):
            capped_seconds += 1

    over_cap = sum(1 for w in true_power[10:] if w > POWER_CAP_W * 1.02)
    print(f"  true power: mean {sum(true_power)/len(true_power):.1f} W, "
          f"max {max(true_power):.1f} W")
    print(f"  governor throttled during {capped_seconds}/{duration_s} seconds")
    print(f"  seconds >2% over cap after settling: {over_cap}")
    print("\nlast ten control actions (t, estimated W, runnable threads):")
    for t, watts, limit in governor.actions[-10:]:
        print(f"  t={t:5.0f}s  est={watts:6.1f} W  threads={limit}")

    # Show what the cap would have cost without estimation: all threads.
    unmanaged = Server(CONFIG, workload, seed=SEED + 1)
    for _ in range(duration_s * ticks_per_second):
        unmanaged.tick()
    unmanaged_mean = unmanaged.energy.total_energy_j() / unmanaged.energy.elapsed_s
    print(f"\nunmanaged mean power would have been {unmanaged_mean:.1f} W "
          f"(cap {POWER_CAP_W:.0f} W)")


if __name__ == "__main__":
    main()
