"""Ensemble power management: node power-down on a simulated cluster.

Rajamani & Lefurgy (cited in the paper's Section 2.3) report 30-50 %
energy savings from powering down idle web-cluster nodes.  This example
reproduces the mechanism on four simulated servers under a compressed
diurnal demand curve, and shows the trade-off Chen's work adds: boot
latency means consolidation needs headroom, and too little headroom
drops work on the rising edge.

Run:  python examples/cluster_power_down.py
"""

from repro.cluster import (
    Cluster,
    PowerAwareManager,
    StaticManager,
    diurnal_demand,
)

DURATION_S = 240
N_NODES = 4


def main() -> None:
    demand = diurnal_demand(
        DURATION_S, peak_threads=22, trough_threads=2, period_s=200.0
    )
    print(
        f"{N_NODES}-node cluster, {DURATION_S}s compressed diurnal demand "
        f"(trough 2 -> peak 22 worker threads)\n"
    )

    static = Cluster(n_nodes=N_NODES, seed=11).run(demand, StaticManager())
    print(
        f"static (all nodes on): {static.energy_j / 1e3:7.1f} kJ, "
        f"avg nodes on {sum(static.nodes_on) / len(static.nodes_on):.2f}, "
        f"dropped {static.dropped_thread_seconds} thread-seconds"
    )

    print("\npower-aware consolidation, by boot headroom:")
    print(f"{'headroom':>9} {'energy kJ':>10} {'savings':>8} {'nodes on':>9} "
          f"{'dropped':>8}")
    for headroom in (2, 6, 10):
        manager = PowerAwareManager(headroom_threads=headroom)
        trace = Cluster(n_nodes=N_NODES, seed=11).run(demand, manager)
        savings = 1.0 - trace.energy_j / static.energy_j
        print(
            f"{headroom:>9} {trace.energy_j / 1e3:10.1f} {savings:8.1%} "
            f"{sum(trace.nodes_on) / len(trace.nodes_on):9.2f} "
            f"{trace.dropped_thread_seconds:8d}"
        )
    print(
        "\nsmall headroom saves the most energy but drops work while nodes"
        "\nboot on the rising edge — the reliability/latency cost Chen's"
        "\nstudy attaches to on/off cycling. (Rajamani measured 30-50%"
        "\nsavings on deeper-idling web clusters.)"
    )


if __name__ == "__main__":
    main()
