"""Event-selection study: which counter best predicts each subsystem?

Replays the paper's Section 4.2 reasoning as an experiment: for each
subsystem, fit single-event quadratics on that subsystem's training
workload and compare transfer error across all other workloads.  The
paper's final selection (fetched uops + halted cycles for CPU, bus
transactions for memory, interrupts for I/O, interrupts+DMA for disk)
should fall out of the table.

Run:  python examples/model_exploration.py
"""

import numpy as np

from repro import fast_config, sweep
from repro.analysis.tables import format_table
from repro.core.events import Subsystem
from repro.core.features import FeatureSet, PAPER_FEATURES
from repro.core.models import PolynomialModel
from repro.core.validation import average_error

SEED = 5
CONFIG = fast_config()
WORKLOADS = ("idle", "gcc", "mcf", "mesa", "lucas", "SPECjbb", "DiskLoad")

#: Subsystem -> (training workload, candidate feature names).
STUDY = {
    Subsystem.CPU: (
        "gcc",
        (
            "fetched_uops_per_cycle",
            "active_fraction",
            "l3_misses_per_mcycle",
            "bus_transactions_per_mcycle",
        ),
    ),
    Subsystem.MEMORY: (
        "mcf",
        (
            "bus_transactions_per_mcycle",
            "l3_misses_per_mcycle",
            "tlb_misses_per_mcycle",
            "fetched_uops_per_cycle",
        ),
    ),
    Subsystem.IO: (
        "DiskLoad",
        (
            "interrupts_per_mcycle",
            "dma_accesses_per_mcycle",
            "uncacheable_accesses_per_mcycle",
        ),
    ),
    Subsystem.DISK: (
        "DiskLoad",
        (
            "disk_interrupts_per_mcycle",
            "interrupts_per_mcycle",
            "dma_accesses_per_mcycle",
        ),
    ),
}


def main() -> None:
    print("simulating workloads...")
    # Independent runs: fan out over worker processes via the sweep
    # engine (bit-identical to a serial loop, just faster).
    runs = sweep(
        WORKLOADS, config=CONFIG, seed=SEED, duration_s=260.0, warmup_windows=2
    )

    for subsystem, (train_name, candidates) in STUDY.items():
        train = runs[train_name]
        measured = train.power.power(subsystem)
        rows = []
        for feature_name in candidates:
            model = PolynomialModel.fit(
                FeatureSet.of(feature_name), 2, train.counters, measured
            )
            errors = [
                average_error(
                    model.predict(run.counters), run.power.power(subsystem)
                )
                for run in runs.values()
            ]
            rows.append(
                [
                    feature_name,
                    model.diagnostics.r_squared,
                    float(np.mean(errors)),
                    float(np.max(errors)),
                ]
            )
        rows.sort(key=lambda row: row[2])
        print()
        print(
            format_table(
                f"{subsystem.value} power: single-event quadratics "
                f"(trained on {train_name})",
                ("event", "train R^2", "avg err %", "worst err %"),
                rows,
                precision=3,
            )
        )
        print(f"  -> best transferring event: {rows[0][0]}")


if __name__ == "__main__":
    main()
