"""Using the modeling core with external (non-simulator) traces.

The trickle-down core is substrate-independent: it consumes counter and
power traces, wherever they came from.  On real hardware you would
collect per-CPU counter windows (perf/perfctr) and per-domain power
windows (sense resistors, a PDU, RAPL-style telemetry for the CPU
domain), align them, and feed the same pipeline.

This example demonstrates the full external path using the CSV
interchange format:

1. instrumented runs are exported to CSV (what a collection script on a
   real machine would produce — one row per sampling window);
2. the CSVs are re-imported as if they were foreign data;
3. the paper recipe trains on the imported traces and validates.

Adapt the CSV columns (see ``docs/modeling.md`` and
``repro/analysis/export.py``) to your collector's output and everything
downstream — training, validation, estimation, billing — works
unchanged.

Run:  python examples/external_trace.py
"""

import os
import tempfile

from repro import (
    ModelTrainer,
    Subsystem,
    fast_config,
    get_workload,
    simulate_workload,
    validate_suite,
)
from repro.analysis.export import run_from_csv, run_to_csv

SEED = 27
CONFIG = fast_config()
TRAIN = ("idle", "gcc", "mcf", "DiskLoad")


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-traces-")
    print(f"collecting traces into {workdir}")

    # 1. "Collect" traces (here: simulate; on hardware: perf + sensors).
    paths = {}
    for name in TRAIN + ("SPECjbb",):
        run = simulate_workload(
            get_workload(name), duration_s=200.0, seed=SEED, config=CONFIG
        ).drop_warmup(2)
        path = os.path.join(workdir, f"{name}.csv")
        run_to_csv(run, path)
        size_kb = os.path.getsize(path) / 1024.0
        print(f"  {name:10} -> {os.path.basename(path)} "
              f"({run.n_samples} windows, {size_kb:.0f} KiB)")
        paths[name] = path

    # 2. Re-import as foreign data.
    imported = {name: run_from_csv(path) for name, path in paths.items()}

    # 3. Same pipeline, external traces.
    suite = ModelTrainer().train({name: imported[name] for name in TRAIN})
    print("\nmodels trained from CSV traces:")
    print(suite.describe())

    report = validate_suite(suite, [imported["SPECjbb"]])
    print("\nvalidation on the imported SPECjbb trace:")
    for subsystem in Subsystem:
        print(f"  {subsystem.value:>8}: "
              f"{report.error('SPECjbb', subsystem):5.2f} % avg error")

    print(
        "\nto port to real hardware: emit one CSV row per window with\n"
        "ev:<event>:cpu<k> columns for the trickle-down events and\n"
        "pw:<subsystem> columns for each measured power domain."
    )


if __name__ == "__main__":
    main()
