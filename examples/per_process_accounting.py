"""Per-processor power accounting in a shared SMP — power-aware billing.

The paper (Section 4.2.1) argues that per-physical-processor power
attribution is essential for shared computing: billing by compute time
alone ignores that one tenant's pointer-chasing job burns more Watts
than another's integer workload.  Only the *sum* of processor power is
measurable; the per-CPU split must come from the model, applied per
processor by linearity of Equation 1.

This example runs a staggered workload (tenants arriving one by one),
attributes CPU power and induced memory/I/O/disk power to each package,
and prints a billing table.

Run:  python examples/per_process_accounting.py
"""

import numpy as np

from repro import ModelTrainer, Subsystem, fast_config
from repro.core.accounting import PowerAccountant, bill_processes
from repro.simulator.system import Server, simulate_workload
from repro.workloads.mixes import mix
from repro.workloads.registry import get_workload

SEED = 21
CONFIG = fast_config()
#: Price per kWh used for the toy invoice.
PRICE_PER_KWH = 0.24


def main() -> None:
    print("training the suite (idle, gcc, mcf, DiskLoad)...")
    runs = {
        name: simulate_workload(
            get_workload(name), duration_s=280.0, seed=SEED, config=CONFIG
        ).drop_warmup(2)
        for name in ("idle", "gcc", "mcf", "DiskLoad")
    }
    suite = ModelTrainer().train(runs)
    accountant = PowerAccountant(suite)

    # Tenants arrive 30 s apart (the staggered gcc run doubles as a
    # tenant-arrival scenario: each package picks up work in turn).
    run = runs["gcc"]
    attribution = accountant.attribute(run.counters)

    per_cpu_mean = attribution.cpu_watts.mean(axis=0)
    induced_mean = attribution.induced_watts.mean(axis=0)
    duration_h = run.duration_s / 3600.0

    print(f"\nattribution over {run.duration_s:.0f}s of staggered gcc:")
    print(f"{'package':>8} {'cpu W':>8} {'induced W':>10} {'total W':>8} "
          f"{'energy Wh':>10} {'invoice':>9}")
    for cpu in range(len(per_cpu_mean)):
        total = per_cpu_mean[cpu] + induced_mean[cpu]
        energy_wh = total * duration_h
        cost = energy_wh / 1000.0 * PRICE_PER_KWH
        print(f"{cpu:>8} {per_cpu_mean[cpu]:8.1f} {induced_mean[cpu]:10.1f} "
              f"{total:8.1f} {energy_wh:10.2f} {cost:8.4f}$")

    suite_total = suite.predict_total(run.counters).mean()
    chipset = suite.predict(Subsystem.CHIPSET, run.counters).mean()
    attributed_total = float(per_cpu_mean.sum() + induced_mean.sum())
    print(f"\nsum of attributions: {attributed_total:.1f} W "
          f"+ unattributed chipset {chipset:.1f} W "
          f"= suite total estimate {suite_total:.1f} W "
          "(attribution conserves the estimate)")

    # Early in the run only package 0 has a tenant: show the asymmetry.
    eighth = run.n_samples // 8
    early = attribution.cpu_watts[:eighth].mean(axis=0)
    late = attribution.cpu_watts[-eighth:].mean(axis=0)
    print("\nCPU Watts per package, first vs last eighth of the run:")
    with np.printoptions(precision=1, suppress=True):
        print(f"  first: {early}   (one tenant: one hot package)")
        print(f"  last : {late}   (all tenants: balanced)")

    # -- Process-level billing on a consolidated (mixed) machine. ------
    # Two tenants share the box: a compiler farm (gcc) and a routing
    # optimiser (mcf).  Same runtime, very different induced energy.
    print("\nprocess-level billing on a gcc+mcf consolidation:")
    spec = mix({"gcc": 2, "mcf": 2}, stagger_s=2.0)
    server = Server(CONFIG, spec, seed=SEED + 5)
    billed_run = server.run(150.0)
    bills = bill_processes(suite, billed_run.counters, server.process_stats)
    print(f"{'process':>8} {'runtime s':>10} {'cpu Wh':>8} {'induced Wh':>11} "
          f"{'total Wh':>9} {'invoice':>9}")
    tenant = {0: "gcc", 1: "gcc", 2: "mcf", 3: "mcf"}
    for bill in sorted(bills, key=lambda b: b.thread_id):
        cpu_wh = bill.cpu_energy_j / 3600.0
        induced_wh = bill.induced_energy_j / 3600.0
        total_wh = bill.total_energy_j / 3600.0
        cost = total_wh / 1000.0 * PRICE_PER_KWH
        label = f"{tenant[bill.thread_id]}#{bill.thread_id}"
        print(f"{label:>8} {bill.runtime_s:10.0f} {cpu_wh:8.3f} "
              f"{induced_wh:11.3f} {total_wh:9.3f} {cost:8.6f}$")
    gcc_induced = sum(b.induced_energy_j for b in bills if tenant[b.thread_id] == "gcc")
    mcf_induced = sum(b.induced_energy_j for b in bills if tenant[b.thread_id] == "mcf")
    print(f"  -> the mcf tenant induced {mcf_induced / max(gcc_induced, 1e-9):.1f}x "
          "the memory/I/O energy of the gcc tenant at equal runtime")


if __name__ == "__main__":
    main()
