"""Thermal management: counter-based power vs temperature sensors.

The paper's opening claim (Sections 1, 2.3): thermal inertia delays
temperature sensors, so reacting to *power* — estimated from
performance counters — lets a DVFS governor act before a thermal
emergency instead of after.  This example measures both halves:

1. a power step (idle -> full SPECjbb) is detected by the counter-based
   estimator within one sampling period, but by the CPU temperature
   sensor only tens of seconds later (the detection lead);
2. two DVFS governors ride the same workload against a junction limit:
   the *reactive* one steps down when the (quantised, slow) sensor
   crosses the limit; the *pre-emptive* one steps down when estimated
   power predicts a steady-state temperature above the limit.  The
   pre-emptive governor keeps the die cooler with the same mechanism.

Run:  python examples/thermal_dvfs.py
"""

from repro import ModelTrainer, Subsystem, SystemPowerEstimator, fast_config
from repro.simulator.system import Server, simulate_workload
from repro.simulator.thermal import (
    DEFAULT_THERMAL_PARAMS,
    RcThermalModel,
    ThermalSensor,
    detection_lead_s,
)
from repro.workloads.registry import get_workload

SEED = 17
CONFIG = fast_config()
#: Junction temperature limit for the governors (deg C).
T_LIMIT_C = 75.0


def train_suite():
    print("training the trickle-down suite...")
    runs = {
        name: simulate_workload(
            get_workload(name), duration_s=280.0, seed=SEED, config=CONFIG
        ).drop_warmup(2)
        for name in ("idle", "gcc", "mcf", "DiskLoad")
    }
    return ModelTrainer().train(runs)


def _package_view(breakdown, n_packages: int):
    """Thermal input for ONE package: its share of the CPU domain.

    The thermal network models a single die; the measured CPU domain is
    the sum over four packages (the paper can only measure the sum,
    Section 3.1.1).
    """
    view = breakdown.as_dict()
    view[Subsystem.CPU] = view[Subsystem.CPU] / n_packages
    return view


def run_with_governor(suite, governor: str, duration_s: int = 240):
    """One closed-loop run; returns (true temps, pstate history)."""
    # mesa runs every package hot (~41 W each at nominal frequency).
    server = Server(CONFIG, get_workload("mesa"), seed=SEED + 2)
    server.sampler.disable()
    estimator = SystemPowerEstimator(suite)
    thermal = RcThermalModel()
    thermal.settle({Subsystem.CPU: 38.3 / 4.0, Subsystem.MEMORY: 27.7})
    sensor = ThermalSensor(resolution_c=1.0, period_s=2.0)
    cpu_params = DEFAULT_THERMAL_PARAMS[Subsystem.CPU]
    n = len(server.packages)

    ticks = int(round(1.0 / CONFIG.tick_s))
    temps, states = [], []
    pstate = 0
    for second in range(duration_s):
        for _ in range(ticks):
            breakdown = server.tick()
            thermal.step(_package_view(breakdown, n), CONFIG.tick_s)
        true_t = thermal.temperature_c(Subsystem.CPU)
        temps.append(true_t)

        counts = server.counters.read_and_clear()
        estimate = estimator.estimate(counts, 1.0, timestamp_s=float(second + 1))
        if governor == "reactive":
            reading = sensor.read(true_t, float(second + 1))
            too_hot = reading > T_LIMIT_C
            cool = reading < T_LIMIT_C - 6.0
        else:  # pre-emptive: act on where estimated power will settle
            # Per-package CPU power drives the package temperature.
            projected = cpu_params.steady_state_c(
                estimate.subsystem_w[Subsystem.CPU] / len(server.packages),
                thermal.ambient_c,
            )
            too_hot = projected > T_LIMIT_C - 2.0
            cool = projected < T_LIMIT_C - 10.0
        if too_hot and pstate < len(CONFIG.cpu.dvfs_states) - 1:
            pstate += 1
        elif cool and pstate > 0:
            pstate -= 1
        server.set_all_pstates(pstate)
        states.append(pstate)
    return temps, states


def main() -> None:
    suite = train_suite()

    # --- Part 1: detection lead on an uncontrolled power step. -------
    print("\npart 1: detection lead after an idle -> SPECjbb power step")
    server = Server(CONFIG, get_workload("SPECjbb"), seed=SEED + 1)
    server.sampler.disable()
    estimator = SystemPowerEstimator(suite)
    thermal = RcThermalModel()
    thermal.settle({Subsystem.CPU: 38.3 / 4.0, Subsystem.MEMORY: 27.7})
    sensor = ThermalSensor()
    ticks = int(round(1.0 / CONFIG.tick_s))
    n = len(server.packages)
    times, est_power, sensed_temp = [], [], []
    for second in range(150):
        for _ in range(ticks):
            breakdown = server.tick()
            thermal.step(_package_view(breakdown, n), CONFIG.tick_s)
        counts = server.counters.read_and_clear()
        estimate = estimator.estimate(counts, 1.0, timestamp_s=float(second + 1))
        times.append(second + 1.0)
        est_power.append(estimate.subsystem_w[Subsystem.CPU])
        sensed_temp.append(
            sensor.read(thermal.temperature_c(Subsystem.CPU), second + 1.0)
        )
    # Matched thresholds: 80 W of CPU-domain power and the package
    # temperature that power settles at — the *same* physical event
    # seen through the two observation channels.
    power_threshold = 80.0
    cpu_params = DEFAULT_THERMAL_PARAMS[Subsystem.CPU]
    temp_threshold = cpu_params.steady_state_c(
        power_threshold / len(server.packages), thermal.ambient_c
    ) - 1.0
    t_power, t_temp = detection_lead_s(
        times, est_power, sensed_temp, power_threshold, temp_threshold
    )
    print(f"  counter-based power estimate crosses {power_threshold:.0f} W "
          f"at t={t_power:.0f}s")
    print(f"  temperature sensor crosses {temp_threshold:.0f} C at"
          f"        t={t_temp:.0f}s")
    print(f"  detection lead: {t_temp - t_power:.0f} s of pre-emption window")

    # --- Part 2: reactive vs pre-emptive DVFS. ------------------------
    print(f"\npart 2: DVFS governors against a {T_LIMIT_C:.0f} C junction limit")
    for governor in ("reactive", "pre-emptive"):
        temps, states = run_with_governor(suite, governor)
        over = sum(1 for t in temps if t > T_LIMIT_C)
        print(
            f"  {governor:12}: peak {max(temps):5.1f} C, "
            f"{over:3d}s above limit, mean p-state {sum(states)/len(states):.2f}"
        )


if __name__ == "__main__":
    main()
