"""Counter-based power-phase detection (the paper's Section 2.4 thread).

Isci showed that performance-counter metrics detect *power* phases
better than control-flow metrics because they see microarchitectural
behaviour.  Here the trickle-down feature vectors are clustered online
(leader-follower) and each phase carries power statistics — the signal
a DVFS governor needs to act before the thermal sensor moves.

Run:  python examples/phase_detection.py
"""

from repro import fast_config
from repro.core.events import Subsystem
from repro.core.features import FeatureSet
from repro.core.phases import PhaseDetector, power_phase_table
from repro.simulator.system import simulate_workload
from repro.workloads.registry import get_workload

SEED = 33
CONFIG = fast_config()

FEATURES = FeatureSet.of(
    "active_fraction",
    "fetched_uops_per_cycle",
    "l3_misses_per_mcycle",
    "bus_transactions_per_mcycle",
    "interrupts_per_mcycle",
)


def analyse(name: str, duration_s: float) -> None:
    run = simulate_workload(
        get_workload(name), duration_s=duration_s, seed=SEED, config=CONFIG
    ).drop_warmup(2)
    total_power = run.power.total()

    detector = PhaseDetector(FEATURES, threshold=0.35)
    assignments = detector.fit(run.counters, total_power)
    stability = detector.stability(assignments)

    print(f"\n{name}: {detector.n_phases} phases over {run.n_samples} samples, "
          f"stability {stability:.2f}")
    print(f"  {'phase':>5} {'samples':>8} {'mean W':>8} {'std W':>7}")
    for phase_id, members, mean_w, std_w in power_phase_table(detector)[:6]:
        print(f"  {phase_id:>5} {members:>8} {mean_w:>8.1f} {std_w:>7.2f}")

    # Phase timeline, compressed: one symbol per sample.
    symbols = "0123456789abcdefghij"
    timeline = "".join(
        symbols[a % len(symbols)] for a in assignments
    )
    print(f"  timeline: {timeline[:100]}{'...' if len(timeline) > 100 else ''}")


def main() -> None:
    print("power phases from performance counters (leader-follower)")
    # gcc: the staggered ramp creates a staircase of utilisation phases.
    analyse("gcc", 280.0)
    # DiskLoad: modify/sync alternation shows I/O-coupled phases.
    analyse("DiskLoad", 220.0)
    # idle: a single stationary phase.
    analyse("idle", 90.0)


if __name__ == "__main__":
    main()
