"""Quickstart: train the paper's models and estimate system power.

Reproduces the core loop of Bircher & John (ISPASS 2007) end to end:

1. run instrumented workloads on the simulated 4-way Xeon server
   (sense resistors + DAQ for power, perfctr-style counters at 1 Hz);
2. train the five trickle-down models per the paper's recipe
   (Equations 1-5);
3. validate on workloads the models never saw;
4. use the fitted suite as a runtime estimator — no power sensing.

Run:  python examples/quickstart.py
"""

from repro import (
    ModelTrainer,
    Subsystem,
    SystemPowerEstimator,
    fast_config,
    get_workload,
    simulate_workload,
    sweep,
    validate_suite,
)

SEED = 42
CONFIG = fast_config()  # 10 ms tick: fast, fidelity-preserving


def main() -> None:
    # 1. Instrumented training runs (the paper's Section 3.2 set-up).
    #    sweep() fans the independent runs out over worker processes;
    #    results are bit-identical to running them one at a time.
    print("simulating training workloads (idle, gcc, mcf, DiskLoad)...")
    runs = sweep(
        ("idle", "gcc", "mcf", "DiskLoad"),
        config=CONFIG,
        seed=SEED,
        duration_s=280.0,
        warmup_windows=2,
    )

    # 2. Fit the per-subsystem models.
    suite = ModelTrainer().train(runs)
    print("\nfitted models:")
    print(suite.describe())

    # 3. Validate on an unseen workload.
    print("\nsimulating a validation workload (SPECjbb)...")
    jbb = simulate_workload(
        get_workload("SPECjbb"), duration_s=200.0, seed=SEED + 1, config=CONFIG
    ).drop_warmup(2)
    report = validate_suite(suite, [jbb])
    print("SPECjbb average error per subsystem (Equation 6):")
    for subsystem in Subsystem:
        print(f"  {subsystem.value:>8}: {report.error('SPECjbb', subsystem):5.2f} %")

    # 4. Runtime estimation from raw counter samples — what a power
    #    management daemon would do, with no power sensors attached.
    estimator = SystemPowerEstimator(suite)
    print("\nstreaming estimation over the last five SPECjbb samples:")
    for i in range(jbb.n_samples - 5, jbb.n_samples):
        counts = {e: jbb.counters.per_cpu(e)[i] for e in jbb.counters.events}
        estimate = estimator.estimate(
            counts, duration_s=float(jbb.counters.durations[i])
        )
        measured = float(jbb.power.total()[i])
        print(
            f"  t={jbb.counters.timestamps[i]:6.1f}s  "
            f"estimated {estimate.total_w:6.1f} W   measured {measured:6.1f} W"
        )


if __name__ == "__main__":
    main()
